package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"csdm/internal/ckpt"
	"csdm/internal/csd"
	"csdm/internal/obs"
	"csdm/internal/pattern"
	"csdm/internal/trajectory"
)

// writePatterns writes a minimal valid pattern file and returns its path.
func writePatterns(tb testing.TB, dir string, ps []pattern.Pattern) string {
	tb.Helper()
	path := filepath.Join(dir, "patterns.json")
	f, err := os.Create(path)
	if err != nil {
		tb.Fatal(err)
	}
	if err := pattern.WriteJSON(f, ps); err != nil {
		tb.Fatal(err)
	}
	if err := f.Close(); err != nil {
		tb.Fatal(err)
	}
	return path
}

func samplePatterns(n int) []pattern.Pattern {
	ps := make([]pattern.Pattern, n)
	for i := range ps {
		ps[i] = pattern.Pattern{
			Stays:   []trajectory.StayPoint{{P: at(float64(i), 0), T: time.Unix(int64(1000+i), 0).UTC()}},
			Support: i + 2,
		}
	}
	return ps
}

// TestReloadRollsBackPatterns corrupts the installed patterns file and
// reloads: the swap must abort before anything goes live — the old
// diagram AND the old pattern set keep serving, and the failure is
// counted. A fixed patterns file then reloads cleanly with the new set.
func TestReloadRollsBackPatterns(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	s := New(Config{Registry: reg})
	snapPath := writeSnapshot(t, dir, testDiagram(t))
	patPath := writePatterns(t, dir, samplePatterns(2))
	if err := s.LoadSnapshot(snapPath); err != nil {
		t.Fatal(err)
	}
	if err := s.LoadPatterns(patPath); err != nil {
		t.Fatal(err)
	}
	if got := len(s.Patterns()); got != 2 {
		t.Fatalf("patterns after LoadPatterns = %d, want 2", got)
	}
	live := s.Snapshot()

	if err := os.WriteFile(patPath, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Reload(); err == nil || !strings.Contains(err.Error(), "patterns") {
		t.Fatalf("Reload with corrupt patterns: err = %v, want patterns decode failure", err)
	}
	if got := s.Snapshot(); got != live {
		t.Fatal("corrupt-patterns reload swapped the diagram")
	}
	if got := len(s.Patterns()); got != 2 {
		t.Fatalf("patterns after failed reload = %d, want the old 2", got)
	}
	var buf bytes.Buffer
	reg.WritePrometheus(&buf)
	if !strings.Contains(buf.String(), "csdm_serve_reload_failures_total 1") {
		t.Fatalf("csdm_serve_reload_failures_total != 1 after failed reload:\n%s", buf.String())
	}

	// A repaired patterns file reloads: new generation, new pattern set,
	// in the same swap.
	writePatterns(t, dir, samplePatterns(3))
	snap, err := s.Reload()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Generation != live.Generation+1 {
		t.Fatalf("generation after repaired reload = %d, want %d", snap.Generation, live.Generation+1)
	}
	if got := len(s.Patterns()); got != 3 {
		t.Fatalf("patterns after repaired reload = %d, want 3", got)
	}
}

// TestDiagramGenerationPropagates checks the lineage carried in the
// framing-v2 header flows through LoadSnapshot into the Snapshot, the
// /v1/info response, and the csdm_serve_diagram_generation gauge —
// while Snapshot.Generation stays the swap count.
func TestDiagramGenerationPropagates(t *testing.T) {
	dir := t.TempDir()
	d := testDiagram(t)
	d.Generation = 7
	d.ParentGeneration = 6
	path := writeSnapshot(t, dir, d)

	reg := obs.NewRegistry()
	s := New(Config{Registry: reg})
	if err := s.LoadSnapshot(path); err != nil {
		t.Fatal(err)
	}
	snap := s.Snapshot()
	if snap.Generation != 1 {
		t.Fatalf("swap generation = %d, want 1", snap.Generation)
	}
	if snap.DiagramGeneration != 7 || snap.DiagramParent != 6 {
		t.Fatalf("diagram lineage = %d/%d, want 7/6", snap.DiagramGeneration, snap.DiagramParent)
	}

	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/v1/info", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("/v1/info = %d: %s", w.Code, w.Body.String())
	}
	var info struct {
		Generation        int64 `json:"generation"`
		DiagramGeneration int64 `json:"diagram_generation"`
		DiagramParent     int64 `json:"diagram_parent_generation"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &info); err != nil {
		t.Fatal(err)
	}
	if info.Generation != 1 || info.DiagramGeneration != 7 || info.DiagramParent != 6 {
		t.Fatalf("/v1/info lineage = %+v, want generation 1, diagram 7/6", info)
	}

	var buf bytes.Buffer
	reg.WritePrometheus(&buf)
	if !strings.Contains(buf.String(), "csdm_serve_diagram_generation 7") {
		t.Fatalf("csdm_serve_diagram_generation gauge missing or wrong:\n%s", buf.String())
	}
}

// TestLoadCurrentAndWatch drives the pull half of the streaming
// publish protocol: LoadCurrent resolves the checkpoint directory's
// CURRENT pointer, and StartWatch hot-swaps when an ingester publishes
// a newer generation.
func TestLoadCurrentAndWatch(t *testing.T) {
	dir := t.TempDir()
	mgr, err := ckpt.New(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	base := testDiagram(t)
	base.Generation = 1
	if err := mgr.SaveGenerationDiagram(base); err != nil {
		t.Fatal(err)
	}

	s := New(Config{})
	if err := s.LoadCurrent(dir); err != nil {
		t.Fatal(err)
	}
	if snap := s.Snapshot(); snap == nil || snap.DiagramGeneration != 1 {
		t.Fatalf("snapshot after LoadCurrent = %+v, want diagram generation 1", snap)
	}

	stop := s.StartWatch(2 * time.Millisecond)
	defer stop()

	// Publish generation 2: the watcher must flip to it without any
	// explicit Reload call.
	next := testDiagram(t)
	next.Generation = 2
	next.ParentGeneration = 1
	if err := mgr.SaveGenerationDiagram(next); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if snap := s.Snapshot(); snap != nil && snap.DiagramGeneration == 2 {
			if snap.DiagramParent != 1 {
				t.Fatalf("diagram parent after watch flip = %d, want 1", snap.DiagramParent)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("watcher never flipped to generation 2 (still %d)", s.Snapshot().DiagramGeneration)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestLoadCurrentRejectsDangling points LoadCurrent at a directory
// whose CURRENT names a missing file: the load must fail and the
// server must stay unready.
func TestLoadCurrentRejectsDangling(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, ckpt.CurrentFile), []byte("diagram.9.csdf\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := New(Config{})
	if err := s.LoadCurrent(dir); err == nil {
		t.Fatal("LoadCurrent accepted a dangling CURRENT pointer")
	}
	if s.Ready() {
		t.Fatal("server ready after failed LoadCurrent")
	}
}

// legacySnapshot writes d with framing v1 (no lineage header) by
// rewriting the v2 frame, proving the serve path degrades to lineage
// 0/0 on pre-lineage snapshots rather than failing.
func TestLoadSnapshotLegacyFramingHasZeroLineage(t *testing.T) {
	dir := t.TempDir()
	d := testDiagram(t)
	d.Generation = 42 // must NOT survive a v1 round-trip
	path := writeSnapshot(t, dir, d)
	// Re-read through the csd layer and re-write: still v2. The
	// v1-compat read path itself is covered in internal/csd; here we
	// just confirm serve surfaces whatever lineage the reader produced.
	got, err := csd.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Generation != 42 {
		t.Fatalf("round-tripped generation = %d, want 42", got.Generation)
	}
	s := New(Config{})
	if err := s.LoadSnapshot(path); err != nil {
		t.Fatal(err)
	}
	if snap := s.Snapshot(); snap.DiagramGeneration != 42 {
		t.Fatalf("DiagramGeneration = %d, want 42", snap.DiagramGeneration)
	}
}

// TestWatchPendingEmptyDir covers the cold-start race: csdserve points
// at a checkpoint directory before the ingester publishes its first
// generation. Pre-fix, LoadCurrent hard-failed and the watcher logged a
// ResolveCurrent error on every tick; now the not-yet-published state
// is a single "waiting" transition plus the csdm_serve_watch_pending
// gauge, and the first published generation is adopted automatically.
func TestWatchPendingEmptyDir(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	var logMu sync.Mutex
	var logs []string
	s := New(Config{Registry: reg, Logf: func(format string, args ...any) {
		logMu.Lock()
		logs = append(logs, fmt.Sprintf(format, args...))
		logMu.Unlock()
	}})
	if err := s.LoadCurrent(dir); err != nil {
		t.Fatalf("LoadCurrent on a not-yet-published dir: %v", err)
	}
	if s.Ready() {
		t.Fatal("ready with no snapshot")
	}
	if g, ok := reg.Gauge("csdm_serve_watch_pending"); !ok || g != 1 {
		t.Fatalf("watch_pending after pending LoadCurrent = %v, %v; want 1", g, ok)
	}

	stop := s.StartWatch(2 * time.Millisecond)
	defer stop()
	// Let ~25 ticks elapse against the still-empty directory; the
	// pre-fix watcher logged one resolve error per tick.
	time.Sleep(50 * time.Millisecond)
	logMu.Lock()
	waiting := 0
	for _, line := range logs {
		if strings.Contains(line, "waiting for first generation") {
			waiting++
		}
		if strings.Contains(line, "no CURRENT pointer") && !strings.Contains(line, "waiting") {
			t.Fatalf("per-tick resolve error leaked to the log: %q", line)
		}
	}
	logMu.Unlock()
	if waiting > 1 {
		t.Fatalf("watcher logged the pending transition %d times, want at most once", waiting)
	}

	// First generation lands: the watcher must adopt it and clear the
	// pending gauge.
	mgr, err := ckpt.New(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	d := testDiagram(t)
	d.Generation = 1
	if err := mgr.SaveGenerationDiagram(d); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if snap := s.Snapshot(); snap != nil && snap.DiagramGeneration == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("watcher never adopted the first published generation")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if g, ok := reg.Gauge("csdm_serve_watch_pending"); !ok || g != 0 {
		t.Fatalf("watch_pending after first generation = %v, %v; want 0", g, ok)
	}
	if !s.Ready() {
		t.Fatal("server not ready after adopting the first generation")
	}
}
