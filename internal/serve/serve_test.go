package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"csdm/internal/csd"
	"csdm/internal/fault"
	"csdm/internal/geo"
	"csdm/internal/obs"
	"csdm/internal/pattern"
	"csdm/internal/poi"
	"csdm/internal/trajectory"
)

var origin = geo.Point{Lon: 121.47, Lat: 31.23}
var proj = geo.NewProjection(origin)

func at(x, y float64) geo.Point { return proj.ToPoint(geo.Meters{X: x, Y: y}) }

// testDiagram builds a small two-unit city around origin: shops to the
// west, restaurants to the east, popularity skewed toward the shops.
func testDiagram(tb testing.TB) *csd.Diagram { return testDiagramAt(tb, origin) }

// testDiagramAt builds the same city centered elsewhere — the reload
// validator's "different city" case.
func testDiagramAt(tb testing.TB, center geo.Point) *csd.Diagram {
	tb.Helper()
	pr := geo.NewProjection(center)
	pt := func(x, y float64) geo.Point { return pr.ToPoint(geo.Meters{X: x, Y: y}) }
	rng := rand.New(rand.NewSource(7))
	var pois []poi.POI
	var id int64 = 1
	for i := 0; i < 10; i++ {
		pois = append(pois, poi.POI{ID: id, Location: pt(-40+rng.NormFloat64()*5, rng.NormFloat64()*5), Minor: poi.MinorsOf(poi.ShopMarket)[0]})
		id++
	}
	for i := 0; i < 6; i++ {
		pois = append(pois, poi.POI{ID: id, Location: pt(60+rng.NormFloat64()*5, rng.NormFloat64()*5), Minor: poi.MinorsOf(poi.Restaurant)[0]})
		id++
	}
	var stays []geo.Point
	for i := 0; i < 120; i++ {
		stays = append(stays, pt(-40+rng.NormFloat64()*15, rng.NormFloat64()*15))
	}
	for i := 0; i < 15; i++ {
		stays = append(stays, pt(60+rng.NormFloat64()*15, rng.NormFloat64()*15))
	}
	return csd.Build(pois, stays, csd.DefaultParams())
}

// writeSnapshot writes d as a framed .csdf file and returns its path.
func writeSnapshot(tb testing.TB, dir string, d *csd.Diagram) string {
	tb.Helper()
	path := filepath.Join(dir, "snap.csdf")
	f, err := os.Create(path)
	if err != nil {
		tb.Fatal(err)
	}
	if err := d.Write(f); err != nil {
		tb.Fatal(err)
	}
	if err := f.Close(); err != nil {
		tb.Fatal(err)
	}
	return path
}

func newTestServer(tb testing.TB, cfg Config) *Server {
	tb.Helper()
	s := New(cfg)
	s.UseDiagram(testDiagram(tb))
	return s
}

func recognizeBody(tb testing.TB, pts ...geo.Point) *bytes.Reader {
	tb.Helper()
	stays := make([]pointJSON, len(pts))
	for i, p := range pts {
		stays[i] = pointJSON{Lon: p.Lon, Lat: p.Lat}
	}
	b, err := json.Marshal(map[string][]pointJSON{"stays": stays})
	if err != nil {
		tb.Fatal(err)
	}
	return bytes.NewReader(b)
}

func TestHealthAndReadiness(t *testing.T) {
	s := New(Config{})

	get := func(path string) *httptest.ResponseRecorder {
		w := httptest.NewRecorder()
		s.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodGet, path, nil))
		return w
	}

	if w := get("/healthz"); w.Code != http.StatusOK {
		t.Fatalf("/healthz = %d, want 200", w.Code)
	}
	// No snapshot yet: alive but not ready, data routes answer 503.
	if w := get("/readyz"); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz before load = %d, want 503", w.Code)
	}
	if w := get("/v1/units?lon=121.47&lat=31.23"); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("/v1/units before load = %d, want 503", w.Code)
	}

	s.UseDiagram(testDiagram(t))
	if w := get("/readyz"); w.Code != http.StatusOK {
		t.Fatalf("/readyz after load = %d, want 200", w.Code)
	}

	// Drain flips readiness immediately; liveness stays green.
	if err := s.Drain(time.Second); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if w := get("/readyz"); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz during drain = %d, want 503", w.Code)
	}
	if w := get("/healthz"); w.Code != http.StatusOK {
		t.Fatalf("/healthz during drain = %d, want 200", w.Code)
	}
}

func TestRecognizeEndpoint(t *testing.T) {
	s := newTestServer(t, Config{})
	w := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/v1/recognize", recognizeBody(t, origin, at(5000, 5000)))
	s.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("/v1/recognize = %d: %s", w.Code, w.Body.String())
	}
	var resp struct {
		Generation int64 `json:"generation"`
		Stays      []struct {
			Semantics []string `json:"semantics"`
		} `json:"stays"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Generation != 1 {
		t.Fatalf("generation = %d, want 1", resp.Generation)
	}
	if len(resp.Stays) != 2 {
		t.Fatalf("stays = %d, want 2", len(resp.Stays))
	}
	// The stay at the popular shop unit gets shop semantics; the stay
	// 5 km out in the void gets none.
	found := false
	for _, name := range resp.Stays[0].Semantics {
		if name == poi.ShopMarket.String() {
			found = true
		}
	}
	if !found {
		t.Fatalf("stay at origin semantics = %v, want %s", resp.Stays[0].Semantics, poi.ShopMarket)
	}
	if len(resp.Stays[1].Semantics) != 0 {
		t.Fatalf("remote stay semantics = %v, want empty", resp.Stays[1].Semantics)
	}
}

func TestRecognizeRejectsBadInput(t *testing.T) {
	s := newTestServer(t, Config{})
	cases := []struct {
		name string
		body string
	}{
		{"empty stays", `{"stays":[]}`},
		{"not json", `{{{`},
		{"bad coordinate", `{"stays":[{"lon":400,"lat":31.2}]}`},
	}
	for _, tc := range cases {
		w := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodPost, "/v1/recognize", strings.NewReader(tc.body))
		s.Handler().ServeHTTP(w, req)
		if w.Code != http.StatusBadRequest {
			t.Errorf("%s: code = %d, want 400", tc.name, w.Code)
		}
	}
	// Wrong method is rejected before any work.
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/v1/recognize", nil))
	if w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/recognize = %d, want 405", w.Code)
	}
}

func TestUnitsEndpoint(t *testing.T) {
	s := newTestServer(t, Config{})
	w := httptest.NewRecorder()
	url := fmt.Sprintf("/v1/units?lon=%f&lat=%f&radius=200", origin.Lon, origin.Lat)
	s.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodGet, url, nil))
	if w.Code != http.StatusOK {
		t.Fatalf("/v1/units = %d: %s", w.Code, w.Body.String())
	}
	var resp struct {
		Units []struct {
			ID      int `json:"id"`
			Members int `json:"members"`
		} `json:"units"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Units) == 0 {
		t.Fatal("no units within 200 m of the city center")
	}
	for i := 1; i < len(resp.Units); i++ {
		if resp.Units[i].ID <= resp.Units[i-1].ID {
			t.Fatalf("units not ordered by ID: %v", resp.Units)
		}
	}

	// The radius cap turns a whole-city scan into a 400.
	w = httptest.NewRecorder()
	s.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodGet, url+"0000", nil))
	if w.Code != http.StatusBadRequest {
		t.Fatalf("oversized radius = %d, want 400", w.Code)
	}
}

func TestPatternsEndpoint(t *testing.T) {
	s := newTestServer(t, Config{})
	url := fmt.Sprintf("/v1/patterns?lon=%f&lat=%f&radius=500", origin.Lon, origin.Lat)

	// No pattern set loaded: empty list, not an error.
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodGet, url, nil))
	if w.Code != http.StatusOK {
		t.Fatalf("/v1/patterns with no set = %d: %s", w.Code, w.Body.String())
	}

	s.SetPatterns([]pattern.Pattern{
		{Support: 3, Stays: []trajectory.StayPoint{{P: at(10, 0)}}},
		{Support: 9, Stays: []trajectory.StayPoint{{P: at(-20, 5)}}},
		{Support: 5, Stays: []trajectory.StayPoint{{P: at(9000, 9000)}}}, // out of range
	})
	w = httptest.NewRecorder()
	s.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodGet, url, nil))
	if w.Code != http.StatusOK {
		t.Fatalf("/v1/patterns = %d: %s", w.Code, w.Body.String())
	}
	var resp struct {
		Patterns []struct {
			Support int `json:"support"`
		} `json:"patterns"`
		Count int `json:"count"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Count != 2 {
		t.Fatalf("count = %d, want 2 (the 9 km pattern is out of range)", resp.Count)
	}
	if resp.Patterns[0].Support != 9 || resp.Patterns[1].Support != 3 {
		t.Fatalf("patterns not ordered by support desc: %+v", resp.Patterns)
	}
}

// TestAdmissionShedsWithRetryAfter saturates every service slot and the
// wait queue with parked requests, then checks the next request is shed
// immediately with 503 + Retry-After while the parked ones complete
// fine once released.
func TestAdmissionShedsWithRetryAfter(t *testing.T) {
	const limit, slack = 2, 1
	reg := obs.NewRegistry()
	s := newTestServer(t, Config{AdmissionLimit: limit, QueueSlack: slack, RetryAfter: 7 * time.Second, Registry: reg})

	// Park `limit` requests inside the handler via a pattern scan that
	// blocks: install a gate the handler must pass through by swapping
	// in a recognizer-independent blocking point — easiest is to hold
	// the admission slots directly.
	release := make(chan struct{})
	var wg sync.WaitGroup
	hold := func() {
		defer wg.Done()
		if err := s.adm.acquire(httptest.NewRequest(http.MethodGet, "/", nil).Context()); err != nil {
			t.Errorf("holder acquire: %v", err)
			return
		}
		<-release
		s.adm.release()
	}
	for i := 0; i < limit+slack; i++ {
		wg.Add(1)
		go hold()
	}
	// Wait until every slot and queue position is taken.
	deadline := time.Now().Add(2 * time.Second)
	for len(s.adm.queue) != limit+slack {
		if time.Now().After(deadline) {
			t.Fatalf("admission never saturated: queue %d/%d", len(s.adm.queue), limit+slack)
		}
		time.Sleep(time.Millisecond)
	}

	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/v1/recognize", recognizeBody(t, origin)))
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("saturated server = %d, want 503", w.Code)
	}
	if got := w.Header().Get("Retry-After"); got != "7" {
		t.Fatalf("Retry-After = %q, want %q", got, "7")
	}

	close(release)
	wg.Wait()

	// Capacity is back: the same request now serves.
	w = httptest.NewRecorder()
	s.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/v1/recognize", recognizeBody(t, origin)))
	if w.Code != http.StatusOK {
		t.Fatalf("after release = %d: %s", w.Code, w.Body.String())
	}

	var buf bytes.Buffer
	reg.WritePrometheus(&buf)
	if !strings.Contains(buf.String(), "csdm_serve_shed_total 1") {
		t.Fatalf("csdm_serve_shed_total not bumped:\n%s", buf.String())
	}
}

// TestMetricsSeededAtZero asserts every serve family is scrapable
// before the first request — the contract cmd/promlint -require
// enforces in CI.
func TestMetricsSeededAtZero(t *testing.T) {
	reg := obs.NewRegistry()
	New(Config{Registry: reg})
	var buf bytes.Buffer
	reg.WritePrometheus(&buf)
	out := buf.String()
	for _, fam := range []string{
		mRequests, mShed, mPanics, mErrors, mTimeouts,
		mReloads, mReloadFailures, mInflight, mGeneration, mUnits, famReqSeconds,
	} {
		if !strings.Contains(out, fam) {
			t.Errorf("family %s absent from a cold scrape", fam)
		}
	}
}

// TestDrainWaitsForInflight starts a real listener, parks a request
// in-flight, and checks Drain waits for it (and that a request issued
// after drain starts is refused by the closed listener).
func TestDrainWaitsForInflight(t *testing.T) {
	s := New(Config{})
	d := testDiagram(t)
	s.UseDiagram(d)
	s.SetPatterns([]pattern.Pattern{{Support: 1, Stays: []trajectory.StayPoint{{P: origin}}}})

	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + addr

	// Hold a request mid-service deterministically: the serve.request
	// fault site sleeps 300ms inside the containment, so the request is
	// provably in flight when Drain fires.
	in, err := fault.Parse("serve.request:delay:1:300ms", 1)
	if err != nil {
		t.Fatal(err)
	}
	fault.Activate(in)
	t.Cleanup(func() { fault.Activate(nil) })

	done := make(chan int, 1)
	go func() {
		resp, err := http.Post(base+"/v1/recognize", "application/json", recognizeBody(t, origin))
		if err != nil {
			done <- -1
			return
		}
		defer resp.Body.Close()
		done <- resp.StatusCode
	}()

	time.Sleep(50 * time.Millisecond)
	if err := s.Drain(5 * time.Second); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	select {
	case code := <-done:
		if code != http.StatusOK && code != -1 {
			t.Fatalf("in-flight request finished with %d", code)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight request never completed")
	}

	// The listener is closed: new connections fail.
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatal("post-drain request succeeded, want connection error")
	}
}
