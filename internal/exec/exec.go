// Package exec is the pipeline's execution layer: context-aware bounded
// worker pools shared by every stage of the Pervasive Miner. The two
// entry points, ParallelFor and ParallelMap, split an index range over a
// fixed number of workers with deterministic result placement — task i's
// result always lands at slot i — so a stage produces bit-identical
// output whether it runs on one worker or many. The first error (or a
// context cancellation) stops the pool and is returned; with a worker
// budget of one the loop runs inline, reproducing the sequential
// pipeline exactly.
//
// Worker panics never escape the pool: each task runs under a recover
// that converts a panic into a *PanicError carrying the panicking
// task's stack, which then propagates through the normal first-error
// path — the pool drains, siblings are canceled, and the caller gets an
// error instead of a crashed process. The process-wide panic total is
// readable via Panics.
//
// The package also defines Options, the cross-cutting knob bundle —
// worker budget plus spatial-index backend — that flows from
// core.Config into every stage, and Note, which records a stage's
// task/worker counts on the telemetry trace.
package exec

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"csdm/internal/fault"
	"csdm/internal/index"
	"csdm/internal/obs"
)

// execMetrics is the pool's process-metrics hook: the registry plus
// pre-resolved histograms, so the per-task cost when metrics are on is
// two time.Now calls and two atomic bumps — never a map lookup — and
// the cost when off is one atomic pointer load per pool invocation.
type execMetrics struct {
	reg  *obs.Registry
	task *obs.Histogram // csdm_exec_task_seconds
	wait *obs.Histogram // csdm_exec_queue_wait_seconds
}

var metricsHook atomic.Pointer[execMetrics]

// SetMetrics wires the execution layer to a process-lifetime metrics
// registry: every pool invocation then records per-task latency
// (csdm_exec_task_seconds), per-worker queue wait — the delay between
// pool start and a worker reaching its first task
// (csdm_exec_queue_wait_seconds) — the running task total
// (csdm_exec_tasks_total), and recovered panics
// (csdm_exec_panics_total, pre-declared at zero so the series exists
// before the first crash). Passing nil detaches; with no registry set
// the pools run at their uninstrumented speed.
func SetMetrics(r *obs.Registry) {
	if r == nil {
		metricsHook.Store(nil)
		return
	}
	r.Describe("csdm_exec_task_seconds", "Latency of individual tasks run on the bounded worker pools.")
	r.Describe("csdm_exec_queue_wait_seconds", "Delay between pool start and a worker picking up its first task.")
	r.Describe("csdm_exec_tasks_total", "Tasks executed by the bounded worker pools.")
	r.Describe("csdm_exec_panics_total", "Worker panics recovered and converted to errors.")
	r.Add("csdm_exec_tasks_total", 0)
	r.Add("csdm_exec_panics_total", 0)
	metricsHook.Store(&execMetrics{
		reg:  r,
		task: r.Histogram("csdm_exec_task_seconds", obs.DefBuckets),
		wait: r.Histogram("csdm_exec_queue_wait_seconds", obs.DefBuckets),
	})
}

// PanicError is a worker panic converted to an error: the recovered
// value plus the stack captured at the panic site. It propagates
// through the pool's first-error path like any task failure.
type PanicError struct {
	// Value is the value the task panicked with.
	Value any
	// Stack is the panicking goroutine's stack trace.
	Stack []byte
}

// Error implements the error interface.
func (e *PanicError) Error() string {
	return fmt.Sprintf("exec: task panic: %v\n%s", e.Value, e.Stack)
}

// panics counts every recovered worker panic process-wide, feeding the
// exec.panics telemetry counter and the debug endpoints.
var panics atomic.Int64

// Panics returns the process-wide count of recovered worker panics.
func Panics() int64 { return panics.Load() }

// NewPanicError records a recovered panic value as a *PanicError,
// capturing the current stack and bumping the process-wide panic
// count. Recover sites outside the pool (e.g. per-approach mining)
// use it so every isolated panic is accounted the same way.
func NewPanicError(v any) *PanicError {
	panics.Add(1)
	if m := metricsHook.Load(); m != nil {
		m.reg.Add("csdm_exec_panics_total", 1)
	}
	return &PanicError{Value: v, Stack: debug.Stack()}
}

// call runs one task with panic isolation: a panicking fn(slot, i)
// yields a *PanicError instead of unwinding the worker goroutine. The
// "exec.task" fault site fires before the task body, so injected errors
// and panics exercise exactly the paths real task failures take.
func call(fn func(slot, i int) error, slot, i int) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = NewPanicError(v)
		}
	}()
	if err := fault.Hit("exec.task"); err != nil {
		return err
	}
	return fn(slot, i)
}

// timedCall is call plus per-task latency observation when the metrics
// hook is set. With m == nil it compiles down to a plain call — no
// closure, no time reads — so uninstrumented pools allocate nothing
// extra per task.
func timedCall(m *execMetrics, fn func(slot, i int) error, slot, i int) error {
	if m == nil {
		return call(fn, slot, i)
	}
	t0 := time.Now()
	err := call(fn, slot, i)
	m.task.Observe(time.Since(t0).Seconds())
	return err
}

// Options carries the execution-layer knobs every pipeline stage
// shares. The zero value means "all cores, grid index, no arena reuse".
type Options struct {
	// Workers bounds a stage's parallelism. Zero or negative means
	// runtime.NumCPU(); one runs the stage sequentially inline.
	Workers int
	// Index selects the spatial-index backend stages build their
	// range/kNN structures with.
	Index index.Kind
	// Arenas is the cross-stage scratch pool. Stages that run parallel
	// regions check per-slot arenas out of it (AcquireArenas /
	// ReleaseArenas) so scratch buffers are reused across stage
	// invocations instead of reallocated. Nil disables reuse — every
	// region then gets fresh arenas — which keeps Options' zero value
	// fully functional.
	Arenas *ArenaPool
}

// AcquireArenas checks n per-slot arenas out of the options' pool (or
// allocates fresh ones when no pool is attached). Pair with
// ReleaseArenas at region end.
func (o Options) AcquireArenas(n int) []*Arena { return o.Arenas.Acquire(n) }

// ReleaseArenas returns arenas checked out with AcquireArenas.
func (o Options) ReleaseArenas(as []*Arena) { o.Arenas.Release(as) }

// Workers resolves a configured worker count: non-positive means
// runtime.NumCPU().
func Workers(n int) int {
	if n <= 0 {
		return runtime.NumCPU()
	}
	return n
}

// Slots returns the number of distinct worker slots ParallelForSlots
// will use for n tasks under the given worker budget — the size callers
// give per-worker scratch arenas. It is at least 1 so scratch slices
// can be indexed unconditionally.
func Slots(workers, n int) int {
	workers = Workers(workers)
	if n > 0 && workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// ParallelFor runs fn(i) for every i in [0, n) on at most workers
// goroutines (non-positive workers means runtime.NumCPU()). The first
// error cancels the remaining work and is returned; a canceled ctx
// aborts promptly with ctx.Err(). With an effective worker count of
// one, fn runs inline in index order — no goroutines — so a
// single-worker run is exactly the sequential loop.
func ParallelFor(ctx context.Context, workers, n int, fn func(i int) error) error {
	return ParallelForSlots(ctx, workers, n, func(_, i int) error { return fn(i) })
}

// ParallelForSlots is ParallelFor for tasks that reuse per-worker
// scratch state: fn additionally receives the worker slot running the
// task, a value in [0, Slots(workers, n)) that is never held by two
// concurrent tasks. Callers index pre-sized scratch arenas by it —
// buffers are per-slot, never shared — so reuse cannot race and, as
// long as a task's OUTPUT never depends on scratch contents left by a
// previous task, results stay bit-identical for any worker budget.
// With an effective worker count of one every task runs inline on slot
// 0 in index order.
func ParallelForSlots(ctx context.Context, workers, n int, fn func(slot, i int) error) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if n <= 0 {
		return nil
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}

	// Process-metrics hook: loaded once per pool invocation, so the
	// disabled path costs one atomic load and a nil compare. When set,
	// each task is timed and counted via timedCall; the multi-worker
	// path below also records per-worker queue wait. The hook must not
	// wrap fn in a closure or introduce closure-captured locals here —
	// either forces a heap escape that the uninstrumented hot path
	// would pay too (timedCall and the goroutine parameter below keep
	// everything escape-free).
	m := metricsHook.Load()
	if m != nil {
		m.reg.Add("csdm_exec_tasks_total", int64(n))
	}

	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := timedCall(m, fn, 0, i); err != nil {
				return err
			}
		}
		return nil
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			cancel()
		})
	}
	var poolStart time.Time
	if m != nil {
		poolStart = time.Now()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(slot int, poolStart time.Time) {
			defer wg.Done()
			if m != nil {
				m.wait.Observe(time.Since(poolStart).Seconds())
			}
			for {
				if err := ctx.Err(); err != nil {
					fail(err)
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := timedCall(m, fn, slot, i); err != nil {
					fail(err)
					return
				}
			}
		}(w, poolStart)
	}
	wg.Wait()
	return firstErr
}

// ParallelMap runs fn(i) for every i in [0, n) under the same pool
// semantics as ParallelFor and returns the results in index order:
// out[i] is fn(i)'s value regardless of which worker computed it or
// when. On error the partial results are discarded.
func ParallelMap[T any](ctx context.Context, workers, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ParallelFor(ctx, workers, n, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Note records one parallel stage on the trace: the exec.tasks counter
// accumulates how many tasks ran through the execution layer, and
// exec.workers accumulates the worker slots granted to stages (so the
// ratio is the mean fan-out). A nil trace is a no-op.
func Note(tr *obs.Trace, tasks, workers int) {
	tr.Add("exec.tasks", int64(tasks))
	tr.Add("exec.workers", int64(workers))
}
