// Package exec is the pipeline's execution layer: context-aware bounded
// worker pools shared by every stage of the Pervasive Miner. The two
// entry points, ParallelFor and ParallelMap, split an index range over a
// fixed number of workers with deterministic result placement — task i's
// result always lands at slot i — so a stage produces bit-identical
// output whether it runs on one worker or many. The first error (or a
// context cancellation) stops the pool and is returned; with a worker
// budget of one the loop runs inline, reproducing the sequential
// pipeline exactly.
//
// The package also defines Options, the cross-cutting knob bundle —
// worker budget plus spatial-index backend — that flows from
// core.Config into every stage, and Note, which records a stage's
// task/worker counts on the telemetry trace.
package exec

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"csdm/internal/index"
	"csdm/internal/obs"
)

// Options carries the execution-layer knobs every pipeline stage
// shares. The zero value means "all cores, grid index".
type Options struct {
	// Workers bounds a stage's parallelism. Zero or negative means
	// runtime.NumCPU(); one runs the stage sequentially inline.
	Workers int
	// Index selects the spatial-index backend stages build their
	// range/kNN structures with.
	Index index.Kind
}

// Workers resolves a configured worker count: non-positive means
// runtime.NumCPU().
func Workers(n int) int {
	if n <= 0 {
		return runtime.NumCPU()
	}
	return n
}

// ParallelFor runs fn(i) for every i in [0, n) on at most workers
// goroutines (non-positive workers means runtime.NumCPU()). The first
// error cancels the remaining work and is returned; a canceled ctx
// aborts promptly with ctx.Err(). With an effective worker count of
// one, fn runs inline in index order — no goroutines — so a
// single-worker run is exactly the sequential loop.
func ParallelFor(ctx context.Context, workers, n int, fn func(i int) error) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if n <= 0 {
		return nil
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			cancel()
		})
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if err := ctx.Err(); err != nil {
					fail(err)
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					fail(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// ParallelMap runs fn(i) for every i in [0, n) under the same pool
// semantics as ParallelFor and returns the results in index order:
// out[i] is fn(i)'s value regardless of which worker computed it or
// when. On error the partial results are discarded.
func ParallelMap[T any](ctx context.Context, workers, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ParallelFor(ctx, workers, n, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Note records one parallel stage on the trace: the exec.tasks counter
// accumulates how many tasks ran through the execution layer, and
// exec.workers accumulates the worker slots granted to stages (so the
// ratio is the mean fan-out). A nil trace is a no-op.
func Note(tr *obs.Trace, tasks, workers int) {
	tr.Add("exec.tasks", int64(tasks))
	tr.Add("exec.workers", int64(workers))
}
