package exec

import (
	"context"
	"sync"
	"testing"
)

// TestArenaPoolCheckout pins the checkout semantics: Acquire hands out
// distinct arenas, Release recycles them (with their grown capacity),
// and nil pools degrade to plain allocation.
func TestArenaPoolCheckout(t *testing.T) {
	p := NewArenaPool()
	as := p.Acquire(3)
	if len(as) != 3 {
		t.Fatalf("Acquire(3) returned %d arenas", len(as))
	}
	seen := map[*Arena]bool{}
	for _, a := range as {
		if a == nil {
			t.Fatal("Acquire returned a nil arena")
		}
		if seen[a] {
			t.Fatal("Acquire handed the same arena out twice in one set")
		}
		seen[a] = true
	}
	as[0].Ints = append(as[0].Ints[:0], 1, 2, 3)
	grown := cap(as[0].Ints)
	p.Release(as)

	reused := p.Acquire(3)
	foundGrown := false
	for _, a := range reused {
		if cap(a.Ints) == grown && grown > 0 {
			foundGrown = true
		}
	}
	if !foundGrown {
		t.Fatal("Release did not recycle the grown arena")
	}
	p.Release(reused)

	var nilPool *ArenaPool
	fresh := nilPool.Acquire(2)
	if len(fresh) != 2 || fresh[0] == nil || fresh[1] == nil {
		t.Fatalf("nil pool Acquire(2) = %v", fresh)
	}
	nilPool.Release(fresh) // must not panic
}

// TestArenaPoolParallelCheckout races many concurrent regions against
// one pool: each region checks out its own arena set, stamps every
// arena, and verifies no other region's stamp appears — the disjointness
// guarantee nested concurrent stages rely on. Run under -race in CI's
// scaling job.
func TestArenaPoolParallelCheckout(t *testing.T) {
	p := NewArenaPool()
	var wg sync.WaitGroup
	for region := 0; region < 16; region++ {
		wg.Add(1)
		go func(stamp int) {
			defer wg.Done()
			for iter := 0; iter < 50; iter++ {
				as := p.Acquire(4)
				for _, a := range as {
					a.Ints = append(a.Ints[:0], stamp)
					a.F64 = append(a.F64[:0], float64(stamp))
				}
				for _, a := range as {
					if a.Ints[0] != stamp || a.F64[0] != float64(stamp) {
						t.Errorf("arena shared across concurrent regions: got %d, want %d", a.Ints[0], stamp)
						return
					}
				}
				p.Release(as)
			}
		}(region)
	}
	wg.Wait()
}

// TestArenaOptionsRoundTrip checks the Options plumbing: with a pool
// attached a parallel region's per-slot arenas come from and return to
// the pool; without one the helpers still work.
func TestArenaOptionsRoundTrip(t *testing.T) {
	opt := Options{Workers: 4, Arenas: NewArenaPool()}
	n := 64
	slots := Slots(opt.Workers, n)
	as := opt.AcquireArenas(slots)
	out := make([]int, n)
	err := ParallelForSlots(context.Background(), opt.Workers, n, func(slot, i int) error {
		buf := as[slot].Ints[:0]
		buf = append(buf, i*2)
		as[slot].Ints = buf
		out[i] = buf[0]
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	opt.ReleaseArenas(as)
	for i, v := range out {
		if v != i*2 {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}

	var bare Options
	fresh := bare.AcquireArenas(2)
	if len(fresh) != 2 || fresh[0] == nil {
		t.Fatal("AcquireArenas without a pool must still return usable arenas")
	}
	bare.ReleaseArenas(fresh)
}
