package exec

import (
	"context"
	"errors"
	"strings"
	"testing"

	"csdm/internal/obs"
)

// TestPoolMetrics drives the worker pool with a registry attached and
// checks the four exec metric families: task latency, queue wait, task
// totals, and the pre-declared panic counter.
func TestPoolMetrics(t *testing.T) {
	r := obs.NewRegistry()
	SetMetrics(r)
	defer SetMetrics(nil)

	const n = 40
	if err := ParallelFor(context.Background(), 4, n, func(i int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if got := r.Counter("csdm_exec_tasks_total"); got != n {
		t.Fatalf("tasks_total = %d, want %d", got, n)
	}
	if got := r.HistogramSnapshot("csdm_exec_task_seconds").Count; got != n {
		t.Fatalf("task latency observations = %d, want %d", got, n)
	}
	// One queue-wait observation per worker goroutine.
	if got := r.HistogramSnapshot("csdm_exec_queue_wait_seconds").Count; got != 4 {
		t.Fatalf("queue wait observations = %d, want 4", got)
	}
	if got := r.Counter("csdm_exec_panics_total"); got != 0 {
		t.Fatalf("panics_total = %d, want pre-declared 0", got)
	}

	// Inline (workers=1) path: tasks are still timed, no queue wait.
	if err := ParallelFor(context.Background(), 1, 3, func(i int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if got := r.Counter("csdm_exec_tasks_total"); got != n+3 {
		t.Fatalf("tasks_total after inline run = %d, want %d", got, n+3)
	}
	if got := r.HistogramSnapshot("csdm_exec_queue_wait_seconds").Count; got != 4 {
		t.Fatalf("inline run recorded queue wait: %d observations", got)
	}

	// A recovered panic lands in the registry counter.
	err := ParallelFor(context.Background(), 2, 4, func(i int) error {
		if i == 2 {
			panic("boom")
		}
		return nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("panic not converted: %v", err)
	}
	if got := r.Counter("csdm_exec_panics_total"); got != 1 {
		t.Fatalf("panics_total = %d, want 1", got)
	}

	var b strings.Builder
	if werr := r.WritePrometheus(&b); werr != nil {
		t.Fatal(werr)
	}
	if errs := obs.Lint(strings.NewReader(b.String())); len(errs) != 0 {
		t.Fatalf("exec metrics fail lint: %v\n%s", errs, b.String())
	}
}

// TestSetMetricsNilDetaches: after detaching, pools record nothing.
func TestSetMetricsNilDetaches(t *testing.T) {
	r := obs.NewRegistry()
	SetMetrics(r)
	SetMetrics(nil)
	if err := ParallelFor(context.Background(), 2, 8, func(i int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if got := r.Counter("csdm_exec_tasks_total"); got != 0 {
		t.Fatalf("detached registry still counted %d tasks", got)
	}
}
