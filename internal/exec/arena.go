package exec

import "sync"

// Arena is per-slot scratch memory a stage borrows for the duration of
// one parallel region: reusable int and float64 buffers that grow to
// the stage's working-set size once and are then recycled across stage
// invocations instead of reallocated.
//
// Ownership contract: an arena checked out through ArenaPool.Acquire is
// slot-scoped — exactly one worker slot reads and writes it until the
// whole set is Released, so no synchronization is needed inside a
// parallel region. Buffers are cleared by reslicing (a[:0]), never
// reallocated unless they must grow, and an arena's contents must never
// be retained past Release: results that outlive the region must be
// copied out (or not use the arena at all — neighborhood lists, for
// example, alias their backing array by design and therefore own it).
type Arena struct {
	// Ints is the reusable []int scratch (e.g. WithinAppend candidate
	// buffers). Use a.Ints[:0] and store the grown slice back.
	Ints []int
	// F64 is the reusable []float64 scratch (e.g. squared-distance
	// buffers for quickselect). Use a.F64[:0] and store back.
	F64 []float64
}

// ArenaPool recycles slot-scoped arenas across stage invocations. A
// stage Acquires one arena per worker slot at region start and Releases
// the whole set at region end, so a pipeline's steady state allocates
// scratch once and reuses it for every subsequent stage — including
// stages of different kinds, since the buffers are generic.
//
// Acquire hands out disjoint arena sets, which is what makes the pool
// safe under nested parallel regions: when an outer fan-out runs two
// stages concurrently, each inner region checks out its own arenas
// rather than sharing a slot-indexed global. Both methods are nil-safe,
// so code paths without a pool (unit tests, direct API calls) fall back
// to plain allocation transparently.
type ArenaPool struct {
	mu   sync.Mutex
	free []*Arena
}

// NewArenaPool returns an empty pool.
func NewArenaPool() *ArenaPool { return &ArenaPool{} }

// Acquire checks out n arenas — one per worker slot. Pooled arenas are
// reused (keeping their grown capacity); the remainder are fresh. A nil
// pool returns fresh arenas, making the pool optional at call sites.
func (p *ArenaPool) Acquire(n int) []*Arena {
	as := make([]*Arena, n)
	if p == nil {
		for i := range as {
			as[i] = &Arena{}
		}
		return as
	}
	p.mu.Lock()
	for i := range as {
		if k := len(p.free); k > 0 {
			as[i] = p.free[k-1]
			p.free[k-1] = nil
			p.free = p.free[:k-1]
		} else {
			as[i] = &Arena{}
		}
	}
	p.mu.Unlock()
	return as
}

// Release returns a checked-out arena set to the pool. The caller must
// not touch the arenas (or anything aliasing their buffers) afterwards.
// Nil-safe: with no pool the arenas are simply dropped for the GC.
func (p *ArenaPool) Release(as []*Arena) {
	if p == nil {
		return
	}
	p.mu.Lock()
	for _, a := range as {
		if a != nil {
			p.free = append(p.free, a)
		}
	}
	p.mu.Unlock()
}
