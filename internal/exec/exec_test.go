package exec

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"

	"csdm/internal/fault"
)

func TestParallelForRunsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		n := 1000
		counts := make([]int32, n)
		err := ParallelFor(context.Background(), workers, n, func(i int) error {
			atomic.AddInt32(&counts[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestParallelMapDeterministicOrdering(t *testing.T) {
	for _, workers := range []int{1, 4, 16} {
		out, err := ParallelMap(context.Background(), workers, 500, func(i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestParallelForFirstErrorStopsWork(t *testing.T) {
	sentinel := errors.New("boom")
	for _, workers := range []int{1, 8} {
		var ran atomic.Int64
		err := ParallelFor(context.Background(), workers, 10000, func(i int) error {
			ran.Add(1)
			if i == 3 {
				return sentinel
			}
			return nil
		})
		if !errors.Is(err, sentinel) {
			t.Fatalf("workers=%d: err = %v, want sentinel", workers, err)
		}
		if got := ran.Load(); got == 10000 {
			t.Fatalf("workers=%d: error did not stop the pool (all %d tasks ran)", workers, got)
		}
	}
}

func TestParallelForCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 8} {
		called := false
		err := ParallelFor(ctx, workers, 100, func(i int) error {
			called = true
			return nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if called {
			t.Fatalf("workers=%d: fn ran despite pre-canceled context", workers)
		}
	}
}

func TestParallelForMidFlightCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	err := ParallelFor(ctx, 4, 100000, func(i int) error {
		if ran.Add(1) == 10 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := ran.Load(); got == 100000 {
		t.Fatal("cancellation did not stop the pool")
	}
}

func TestParallelMapErrorDiscardsResults(t *testing.T) {
	out, err := ParallelMap(context.Background(), 4, 100, func(i int) (int, error) {
		if i == 50 {
			return 0, errors.New("mid-run failure")
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("want error")
	}
	if out != nil {
		t.Fatal("partial results should be discarded on error")
	}
}

func TestParallelForEmptyAndWorkerResolution(t *testing.T) {
	if err := ParallelFor(context.Background(), 4, 0, func(int) error { return errors.New("never") }); err != nil {
		t.Fatalf("n=0: %v", err)
	}
	if Workers(0) < 1 || Workers(-3) < 1 {
		t.Fatal("Workers must resolve non-positive budgets to at least 1")
	}
	if Workers(7) != 7 {
		t.Fatal("Workers must pass positive budgets through")
	}
}

// TestPanicIsolation pins the panic contract for both the inline and
// pooled paths: a panicking task surfaces as a *PanicError with the
// panic value and a captured stack, the pool drains without deadlock,
// and the process-wide panic counter advances.
func TestPanicIsolation(t *testing.T) {
	for _, workers := range []int{1, 8} {
		before := Panics()
		err := ParallelFor(context.Background(), workers, 100, func(i int) error {
			if i == 7 {
				panic("kaboom")
			}
			return nil
		})
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: err = %v, want *PanicError", workers, err)
		}
		if pe.Value != "kaboom" {
			t.Fatalf("workers=%d: panic value = %v", workers, pe.Value)
		}
		if len(pe.Stack) == 0 || !strings.Contains(err.Error(), "kaboom") {
			t.Fatalf("workers=%d: missing stack or value in %q", workers, err)
		}
		if Panics() <= before {
			t.Fatalf("workers=%d: panic counter did not advance", workers)
		}
	}
}

// TestPanicPoolStaysReusable proves a panicked pool leaves the package
// in a working state: the very next ParallelFor completes every task.
func TestPanicPoolStaysReusable(t *testing.T) {
	_ = ParallelFor(context.Background(), 4, 50, func(i int) error {
		panic(i)
	})
	var ran atomic.Int64
	if err := ParallelFor(context.Background(), 4, 500, func(i int) error {
		ran.Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 500 {
		t.Fatalf("ran %d/500 tasks after a panicked pool", ran.Load())
	}
}

// TestFaultSiteExecTask drives the exec.task injection site through
// both the error and panic kinds.
func TestFaultSiteExecTask(t *testing.T) {
	in, err := fault.Parse("exec.task:error:3", 1)
	if err != nil {
		t.Fatal(err)
	}
	fault.Activate(in)
	defer fault.Activate(nil)
	err = ParallelFor(context.Background(), 1, 10, func(i int) error { return nil })
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("err = %v, want injected fault", err)
	}

	in, _ = fault.Parse("exec.task:panic:2", 1)
	fault.Activate(in)
	err = ParallelFor(context.Background(), 4, 10, func(i int) error { return nil })
	var pe *PanicError
	if !errors.As(err, &pe) || !fault.IsInjectedPanic(pe.Value) {
		t.Fatalf("err = %v, want *PanicError carrying an injected panic", err)
	}
}
