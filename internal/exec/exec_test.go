package exec

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

func TestParallelForRunsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		n := 1000
		counts := make([]int32, n)
		err := ParallelFor(context.Background(), workers, n, func(i int) error {
			atomic.AddInt32(&counts[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestParallelMapDeterministicOrdering(t *testing.T) {
	for _, workers := range []int{1, 4, 16} {
		out, err := ParallelMap(context.Background(), workers, 500, func(i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestParallelForFirstErrorStopsWork(t *testing.T) {
	sentinel := errors.New("boom")
	for _, workers := range []int{1, 8} {
		var ran atomic.Int64
		err := ParallelFor(context.Background(), workers, 10000, func(i int) error {
			ran.Add(1)
			if i == 3 {
				return sentinel
			}
			return nil
		})
		if !errors.Is(err, sentinel) {
			t.Fatalf("workers=%d: err = %v, want sentinel", workers, err)
		}
		if got := ran.Load(); got == 10000 {
			t.Fatalf("workers=%d: error did not stop the pool (all %d tasks ran)", workers, got)
		}
	}
}

func TestParallelForCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 8} {
		called := false
		err := ParallelFor(ctx, workers, 100, func(i int) error {
			called = true
			return nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if called {
			t.Fatalf("workers=%d: fn ran despite pre-canceled context", workers)
		}
	}
}

func TestParallelForMidFlightCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	err := ParallelFor(ctx, 4, 100000, func(i int) error {
		if ran.Add(1) == 10 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := ran.Load(); got == 100000 {
		t.Fatal("cancellation did not stop the pool")
	}
}

func TestParallelMapErrorDiscardsResults(t *testing.T) {
	out, err := ParallelMap(context.Background(), 4, 100, func(i int) (int, error) {
		if i == 50 {
			return 0, errors.New("mid-run failure")
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("want error")
	}
	if out != nil {
		t.Fatal("partial results should be discarded on error")
	}
}

func TestParallelForEmptyAndWorkerResolution(t *testing.T) {
	if err := ParallelFor(context.Background(), 4, 0, func(int) error { return errors.New("never") }); err != nil {
		t.Fatalf("n=0: %v", err)
	}
	if Workers(0) < 1 || Workers(-3) < 1 {
		t.Fatal("Workers must resolve non-positive budgets to at least 1")
	}
	if Workers(7) != 7 {
		t.Fatal("Workers must pass positive budgets through")
	}
}
