package recognize

import (
	"csdm/internal/geo"
	"csdm/internal/index"
	"csdm/internal/poi"
)

// NearestPOIRecognizer annotates a stay point with the category of the
// single nearest POI within a radius. It is the naive strategy §4.2
// argues against ("find the POI with largest visited probability") and
// exists for the voting-vs-nearest ablation: under GPS noise near unit
// boundaries it flip-flops between categories.
type NearestPOIRecognizer struct {
	pois   []poi.POI
	idx    index.Index
	radius float64
}

// NewNearestPOIRecognizer indexes the POI set on the requested backend;
// radius bounds the search (the paper's R3σ is the natural choice).
// Earlier versions hardcoded the grid here, so an rtree/kdtree pipeline
// silently ran its ablation baseline on a different backend than every
// other stage.
func NewNearestPOIRecognizer(pois []poi.POI, radius float64, kind index.Kind) *NearestPOIRecognizer {
	return &NearestPOIRecognizer{
		pois:   pois,
		idx:    index.New(kind, poi.Locations(pois), radius),
		radius: radius,
	}
}

// Name implements Recognizer.
func (r *NearestPOIRecognizer) Name() string { return "NearestPOI" }

// Recognize implements Recognizer.
func (r *NearestPOIRecognizer) Recognize(p geo.Point) poi.Semantics {
	near := r.idx.Nearest(p, 1)
	if len(near) == 1 && geo.Haversine(p, r.pois[near[0]].Location) <= r.radius {
		return r.pois[near[0]].Semantics()
	}
	return 0
}
