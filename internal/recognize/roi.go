package recognize

import (
	"csdm/internal/cluster"
	"csdm/internal/geo"
	"csdm/internal/index"
	"csdm/internal/poi"
	"csdm/internal/stage"
)

// ROIParams configure the hot-region baseline of [21].
type ROIParams struct {
	// Eps is the DBSCAN radius (meters) for hot-region detection over
	// stay points.
	Eps float64
	// MinPts is the DBSCAN core threshold.
	MinPts int
	// AnnotateRadius bounds the POI search around a stay point when
	// attaching the semantic description inside a hot region.
	AnnotateRadius float64
	// TagShare is the minimum share of the in-range POIs a major
	// category needs to enter the stay's semantic description.
	TagShare float64
}

// DefaultROIParams follow the hybrid algorithm of [21] at city scale.
// AnnotateRadius works at hot-region scale — [21] attaches semantics to
// whole regions, not to individual venues — so it is wider than the
// CSD's R3σ search. The width is the source of the baseline's
// coarseness: stays far from a venue still inherit its category.
func DefaultROIParams() ROIParams {
	return ROIParams{Eps: 120, MinPts: 30, AnnotateRadius: 120, TagShare: 0.15}
}

// ROIRecognizer is the Region-of-Interest baseline of Chen et al. [21]:
// DBSCAN detects hot regions from historical stay points, and a stay
// point falling inside a hot region receives its semantic description
// from the POIs spatially overlapping it — the prominent categories
// (share ≥ TagShare) within AnnotateRadius. Stay points outside every
// hot region stay unannotated.
//
// Because region purity is uncontrolled — there is no purification step
// — nearby stay points in a semantically complex region receive
// different tag sets depending on which POIs happen to fall in range
// under GPS noise. That weak consistency is exactly what the CSD's
// purification and unit voting are designed to fix (§2, §4.2).
type ROIRecognizer struct {
	params ROIParams
	// regionOf[i] is the hot region of historical stay i (or noise).
	regionOf []int
	stayIdx  index.Index
	stays    []geo.Point
	nRegions int
	pois     []poi.POI
	poiIdx   index.Index
}

// NewROIRecognizer builds the baseline from historical stay-point
// locations and the POI dataset.
func NewROIRecognizer(stays []geo.Point, pois []poi.POI, params ROIParams) *ROIRecognizer {
	return NewROIRecognizerEnv(stage.Background(), stays, pois, params)
}

// NewROIRecognizerEnv is NewROIRecognizer under a stage environment:
// hot-region DBSCAN runs on env's worker pool and the lookup
// structures use the env.Opt.Index backend.
func NewROIRecognizerEnv(env stage.Env, stays []geo.Point, pois []poi.POI, params ROIParams) *ROIRecognizer {
	opt := env.Opt
	res := cluster.DBSCANWith(stays, params.Eps, params.MinPts, opt)
	return &ROIRecognizer{
		params:   params,
		stays:    stays,
		regionOf: res.Labels,
		nRegions: res.NumClusters,
		stayIdx:  index.New(opt.Index, stays, params.Eps),
		pois:     pois,
		poiIdx:   index.New(opt.Index, poi.Locations(pois), params.AnnotateRadius),
	}
}

// Name implements Recognizer.
func (r *ROIRecognizer) Name() string { return "ROI" }

// NumRegions returns the number of detected hot regions.
func (r *ROIRecognizer) NumRegions() int { return r.nRegions }

// InRegion reports whether p falls inside a hot region (within Eps of a
// region member).
func (r *ROIRecognizer) InRegion(p geo.Point) bool {
	for _, si := range r.stayIdx.Within(p, r.params.Eps) {
		if r.regionOf[si] >= 0 {
			return true
		}
	}
	return false
}

// Recognize implements Recognizer: inside a hot region, the stay point
// inherits the union of the categories of the POIs within
// AnnotateRadius; outside every region it stays unannotated.
func (r *ROIRecognizer) Recognize(p geo.Point) poi.Semantics {
	var sc Scratch
	return r.RecognizeBuf(p, &sc)
}

// RecognizeBuf implements BufferedRecognizer; sc.ids serves both the
// region-membership and the POI range query in turn.
func (r *ROIRecognizer) RecognizeBuf(p geo.Point, sc *Scratch) poi.Semantics {
	sc.ids = r.stayIdx.WithinAppend(p, r.params.Eps, sc.ids[:0])
	in := false
	for _, si := range sc.ids {
		if r.regionOf[si] >= 0 {
			in = true
			break
		}
	}
	if !in {
		return 0
	}
	var counts [poi.NumMajors]int
	total := 0
	sc.ids = r.poiIdx.WithinAppend(p, r.params.AnnotateRadius, sc.ids[:0])
	for _, pi := range sc.ids {
		counts[r.pois[pi].Major()]++
		total++
	}
	var tags poi.Semantics
	for mj := 0; mj < poi.NumMajors; mj++ {
		if total > 0 && float64(counts[mj]) >= r.params.TagShare*float64(total) {
			tags = tags.Add(poi.Major(mj))
		}
	}
	return tags
}
