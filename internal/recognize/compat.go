// compat.go quarantines the package's deprecated pre-engine wrappers:
// everything here only repacks parameters into a stage.Env and will be
// deleted once no caller threads them by hand (see DESIGN.md §5d). New
// code must use the Env-based entry points directly.
package recognize

import (
	"context"

	"csdm/internal/exec"
	"csdm/internal/geo"
	"csdm/internal/obs"
	"csdm/internal/poi"
	"csdm/internal/stage"
	"csdm/internal/trajectory"
)

// AnnotateJourneysCtx is the pre-engine full-control form.
//
// Deprecated: use AnnotateJourneysEnv with a stage.Env; this wrapper
// only repacks its parameters and will be removed once no caller
// threads them by hand (see DESIGN.md §5d).
func AnnotateJourneysCtx(ctx context.Context, js []trajectory.Journey, chain trajectory.ChainParams, r Recognizer, tr *obs.Trace, opt exec.Options) ([]trajectory.SemanticTrajectory, error) {
	return AnnotateJourneysEnv(stage.Env{Ctx: ctx, Run: ctx, Trace: tr, Opt: opt}, js, chain, r)
}

// NewROIRecognizerWith is the pre-engine full-control constructor.
//
// Deprecated: use NewROIRecognizerEnv with a stage.Env; this wrapper
// only repacks its parameters and will be removed once no caller
// threads them by hand (see DESIGN.md §5d).
func NewROIRecognizerWith(stays []geo.Point, pois []poi.POI, params ROIParams, opt exec.Options) *ROIRecognizer {
	env := stage.Background()
	env.Opt = opt
	return NewROIRecognizerEnv(env, stays, pois, params)
}
