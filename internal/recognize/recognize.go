// Package recognize assigns semantic properties to stay points,
// resolving the paper's semantic-absence challenge. It provides the
// CSD-based voting recognizer of Algorithm 3, the ROI hot-region
// baseline of Chen et al. [21] that the experiments compare against,
// and a plain nearest-POI recognizer used by ablations.
package recognize

import (
	"context"

	"csdm/internal/exec"
	"csdm/internal/geo"
	"csdm/internal/obs"
	"csdm/internal/poi"
	"csdm/internal/stage"
	"csdm/internal/trajectory"
)

// Recognizer resolves the semantic property of a stay-point location.
type Recognizer interface {
	// Name identifies the recognizer in experiment reports.
	Name() string
	// Recognize returns the semantic property of a stay at p; the empty
	// set when nothing is known about the location.
	Recognize(p geo.Point) poi.Semantics
}

// Scratch is per-worker reusable state for buffered recognition. One
// Scratch belongs to exactly one worker at a time (the zero value is
// ready to use); a recognizer may leave arbitrary garbage in it between
// calls but must never let an answer depend on that garbage, so scratch
// reuse cannot perturb worker-count determinism.
type Scratch struct {
	ids   []int
	uids  []int
	votes []float64
	tags  []poi.Semantics
}

// BufferedRecognizer is a Recognizer whose lookups can run against
// caller-owned scratch instead of allocating per call. Annotation loops
// type-assert for it and thread one Scratch per worker slot.
type BufferedRecognizer interface {
	Recognizer
	// RecognizeBuf is Recognize using sc for all transient state.
	RecognizeBuf(p geo.Point, sc *Scratch) poi.Semantics
}

// Annotate fills in the semantic property of every stay point of every
// trajectory in db, in place — the outer loop of Algorithm 3.
func Annotate(db []trajectory.SemanticTrajectory, r Recognizer) {
	_ = AnnotateCtx(context.Background(), db, r, 0)
}

// AnnotateCtx annotates db on a bounded worker pool, one task per
// trajectory; every Recognizer in this package is safe for concurrent
// readers. Each stay's property depends only on its own location, so
// the annotation is identical for any worker budget. A canceled ctx
// aborts with ctx.Err(), leaving db partially annotated.
func AnnotateCtx(ctx context.Context, db []trajectory.SemanticTrajectory, r Recognizer, workers int) error {
	if br, ok := r.(BufferedRecognizer); ok {
		scratch := make([]Scratch, exec.Slots(workers, len(db)))
		return exec.ParallelForSlots(ctx, workers, len(db), func(slot, ti int) error {
			sc := &scratch[slot]
			stays := db[ti].Stays
			for si := range stays {
				stays[si].S = br.RecognizeBuf(stays[si].P, sc)
			}
			return nil
		})
	}
	return exec.ParallelFor(ctx, workers, len(db), func(ti int) error {
		stays := db[ti].Stays
		for si := range stays {
			stays[si].S = r.Recognize(stays[si].P)
		}
		return nil
	})
}

// RecognizeStays annotates stays in place with r, checking ctx between
// stays so a per-request deadline propagates into the recognition loop
// rather than only bounding the HTTP write. sc is optional per-caller
// scratch (nil allocates a fresh one); the serving layer threads one
// Scratch per request from a sync.Pool so steady-state recognition
// allocates nothing. Returns ctx.Err() on cancellation, leaving the
// remaining stays unannotated.
func RecognizeStays(ctx context.Context, stays []trajectory.StayPoint, r Recognizer, sc *Scratch) error {
	br, buffered := r.(BufferedRecognizer)
	if buffered && sc == nil {
		sc = new(Scratch)
	}
	for i := range stays {
		if err := ctx.Err(); err != nil {
			return err
		}
		if buffered {
			stays[i].S = br.RecognizeBuf(stays[i].P, sc)
		} else {
			stays[i].S = r.Recognize(stays[i].P)
		}
	}
	return nil
}

// AnnotateJourneys converts raw journeys into annotated semantic
// trajectories: chain card-linked journeys (§5), then recognize every
// stay point.
func AnnotateJourneys(js []trajectory.Journey, chain trajectory.ChainParams, r Recognizer) []trajectory.SemanticTrajectory {
	return AnnotateJourneysTraced(js, chain, r, nil)
}

// AnnotateJourneysTraced is AnnotateJourneys with telemetry recorded on
// tr (nil-safe).
func AnnotateJourneysTraced(js []trajectory.Journey, chain trajectory.ChainParams, r Recognizer, tr *obs.Trace) []trajectory.SemanticTrajectory {
	env := stage.Background()
	env.Trace = tr
	db, _ := AnnotateJourneysEnv(env, js, chain, r)
	return db
}

// AnnotateJourneysEnv is the full-control form: a "recognize.<name>"
// span with chain and annotate children, plus counters for the stays
// the recognizer annotated versus left unknown (the empty property).
// Annotation fans out over env's worker pool; a canceled env.Ctx
// aborts with its error and a nil database.
func AnnotateJourneysEnv(env stage.Env, js []trajectory.Journey, chain trajectory.ChainParams, r Recognizer) ([]trajectory.SemanticTrajectory, error) {
	tr := env.Trace
	root := env.StartSpan("recognize." + r.Name())
	defer root.End()

	sp := root.Start("chain")
	db := trajectory.Chain(js, chain)
	sp.End()

	sp = root.Start("annotate")
	exec.Note(tr, len(db), exec.Workers(env.Opt.Workers))
	err := AnnotateCtx(env.Ctx, db, r, env.Opt.Workers)
	if tr != nil {
		tr.Observe(obs.Label("csdm_recognize_annotate_seconds", "recognizer", r.Name()),
			sp.Duration().Seconds())
	}
	sp.End()
	if err != nil {
		return nil, err
	}

	if tr != nil {
		var annotated, unknown int64
		for _, st := range db {
			for _, stay := range st.Stays {
				if stay.S.IsEmpty() {
					unknown++
				} else {
					annotated++
				}
			}
		}
		tr.Add("recognize."+r.Name()+".stays.annotated", annotated)
		tr.Add("recognize."+r.Name()+".stays.unknown", unknown)
		tr.Add("recognize."+r.Name()+".trajectories", int64(len(db)))
	}
	return db, nil
}
