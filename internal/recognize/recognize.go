// Package recognize assigns semantic properties to stay points,
// resolving the paper's semantic-absence challenge. It provides the
// CSD-based voting recognizer of Algorithm 3, the ROI hot-region
// baseline of Chen et al. [21] that the experiments compare against,
// and a plain nearest-POI recognizer used by ablations.
package recognize

import (
	"csdm/internal/geo"
	"csdm/internal/obs"
	"csdm/internal/poi"
	"csdm/internal/trajectory"
)

// Recognizer resolves the semantic property of a stay-point location.
type Recognizer interface {
	// Name identifies the recognizer in experiment reports.
	Name() string
	// Recognize returns the semantic property of a stay at p; the empty
	// set when nothing is known about the location.
	Recognize(p geo.Point) poi.Semantics
}

// Annotate fills in the semantic property of every stay point of every
// trajectory in db, in place — the outer loop of Algorithm 3.
func Annotate(db []trajectory.SemanticTrajectory, r Recognizer) {
	for ti := range db {
		for si := range db[ti].Stays {
			db[ti].Stays[si].S = r.Recognize(db[ti].Stays[si].P)
		}
	}
}

// AnnotateJourneys converts raw journeys into annotated semantic
// trajectories: chain card-linked journeys (§5), then recognize every
// stay point.
func AnnotateJourneys(js []trajectory.Journey, chain trajectory.ChainParams, r Recognizer) []trajectory.SemanticTrajectory {
	return AnnotateJourneysTraced(js, chain, r, nil)
}

// AnnotateJourneysTraced is AnnotateJourneys with telemetry: a
// "recognize.<name>" span with chain and annotate children, plus
// counters for the stays the recognizer annotated versus left unknown
// (the empty property). A nil trace is a no-op.
func AnnotateJourneysTraced(js []trajectory.Journey, chain trajectory.ChainParams, r Recognizer, tr *obs.Trace) []trajectory.SemanticTrajectory {
	root := tr.Start("recognize." + r.Name())
	defer root.End()

	sp := root.Start("chain")
	db := trajectory.Chain(js, chain)
	sp.End()

	sp = root.Start("annotate")
	Annotate(db, r)
	sp.End()

	if tr != nil {
		var annotated, unknown int64
		for _, st := range db {
			for _, stay := range st.Stays {
				if stay.S.IsEmpty() {
					unknown++
				} else {
					annotated++
				}
			}
		}
		tr.Add("recognize."+r.Name()+".stays.annotated", annotated)
		tr.Add("recognize."+r.Name()+".stays.unknown", unknown)
		tr.Add("recognize."+r.Name()+".trajectories", int64(len(db)))
	}
	return db
}
