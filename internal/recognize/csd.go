package recognize

import (
	"csdm/internal/csd"
	"csdm/internal/geo"
	"csdm/internal/poi"
)

// CSDRecognizer implements Algorithm 3: a range search collects the
// diagram's member POIs within R3σ of the stay point; each POI votes for
// its fine-grained semantic unit with weight pop(p^I)·‖p^I, sp‖; the
// highest-voted unit wins and the stay point receives the union of the
// semantic properties of that unit's in-range POIs.
//
// Voting per unit — rather than picking the single most likely POI —
// is what makes recognition robust to GPS noise near unit boundaries
// (the river example of §4.2).
type CSDRecognizer struct {
	diagram *csd.Diagram
}

// NewCSDRecognizer wraps a built diagram.
func NewCSDRecognizer(d *csd.Diagram) *CSDRecognizer {
	return &CSDRecognizer{diagram: d}
}

// Name implements Recognizer.
func (r *CSDRecognizer) Name() string { return "CSD" }

// Recognize implements Recognizer (Algorithm 3 lines 5–11).
func (r *CSDRecognizer) Recognize(p geo.Point) poi.Semantics {
	var sc Scratch
	return r.RecognizeBuf(p, &sc)
}

// RecognizeBuf implements BufferedRecognizer. The per-unit vote tallies
// live in parallel slices scanned linearly — a stay point sees a
// handful of units at most, so the scan beats a map and allocates
// nothing. The winner rule (highest vote, lowest unit ID on ties)
// matches the map formulation exactly: vote sums accumulate in range
// order either way.
func (r *CSDRecognizer) RecognizeBuf(p geo.Point, sc *Scratch) poi.Semantics {
	d := r.diagram
	kernel := d.Kernel()
	sc.ids = d.MembersWithinAppend(p, kernel.Radius(), sc.ids[:0])
	if len(sc.ids) == 0 {
		return 0
	}
	uids, votes, tags := sc.uids[:0], sc.votes[:0], sc.tags[:0]
	for _, i := range sc.ids {
		uid := d.UnitOf(i)
		w := d.Pop[i] * kernel.Weight(d.POIs[i].Location, p)
		sem := d.POIs[i].Semantics()
		k := 0
		for ; k < len(uids); k++ {
			if uids[k] == uid {
				votes[k] += w
				tags[k] = tags[k].Union(sem)
				break
			}
		}
		if k == len(uids) {
			uids = append(uids, uid)
			votes = append(votes, w)
			tags = append(tags, sem)
		}
	}
	sc.uids, sc.votes, sc.tags = uids, votes, tags
	best := 0
	for k := 1; k < len(uids); k++ {
		if votes[k] > votes[best] || (votes[k] == votes[best] && uids[k] < uids[best]) {
			best = k
		}
	}
	return tags[best]
}
