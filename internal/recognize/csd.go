package recognize

import (
	"csdm/internal/csd"
	"csdm/internal/geo"
	"csdm/internal/poi"
)

// CSDRecognizer implements Algorithm 3: a range search collects the
// diagram's member POIs within R3σ of the stay point; each POI votes for
// its fine-grained semantic unit with weight pop(p^I)·‖p^I, sp‖; the
// highest-voted unit wins and the stay point receives the union of the
// semantic properties of that unit's in-range POIs.
//
// Voting per unit — rather than picking the single most likely POI —
// is what makes recognition robust to GPS noise near unit boundaries
// (the river example of §4.2).
type CSDRecognizer struct {
	diagram *csd.Diagram
}

// NewCSDRecognizer wraps a built diagram.
func NewCSDRecognizer(d *csd.Diagram) *CSDRecognizer {
	return &CSDRecognizer{diagram: d}
}

// Name implements Recognizer.
func (r *CSDRecognizer) Name() string { return "CSD" }

// Recognize implements Recognizer (Algorithm 3 lines 5–11).
func (r *CSDRecognizer) Recognize(p geo.Point) poi.Semantics {
	d := r.diagram
	kernel := d.Kernel()
	in := d.MembersWithin(p, kernel.Radius())
	if len(in) == 0 {
		return 0
	}
	votes := make(map[int]float64)
	tags := make(map[int]poi.Semantics)
	for _, i := range in {
		uid := d.UnitOf(i)
		votes[uid] += d.Pop[i] * kernel.Weight(d.POIs[i].Location, p)
		tags[uid] = tags[uid].Union(d.POIs[i].Semantics())
	}
	best, bestVote := -1, -1.0
	for uid, v := range votes {
		if v > bestVote || (v == bestVote && uid < best) {
			best, bestVote = uid, v
		}
	}
	return tags[best]
}
