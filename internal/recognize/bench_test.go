package recognize

import (
	"context"
	"sync"
	"testing"

	"csdm/internal/csd"
	"csdm/internal/geo"
	"csdm/internal/synth"
	"csdm/internal/trajectory"
)

var (
	annotOnce sync.Once
	annotRec  *CSDRecognizer
	annotDB   []trajectory.SemanticTrajectory
)

// annotFixture builds the same synthetic workload as the repository's
// BenchmarkMine, its diagram, and the chained trajectory database.
func annotFixture() (*CSDRecognizer, []trajectory.SemanticTrajectory) {
	annotOnce.Do(func() {
		cfg := synth.DefaultConfig()
		cfg.Seed = 1
		cfg.NumPOIs = 3000
		cfg.NumPassengers = 600
		cfg.Days = 14
		city := synth.NewCity(cfg)
		w := city.GenerateWorkload()
		stays := make([]geo.Point, 0, 2*len(w.Journeys))
		for _, j := range w.Journeys {
			stays = append(stays, j.Pickup, j.Dropoff)
		}
		d := csd.Build(city.POIs, stays, csd.DefaultParams())
		annotRec = NewCSDRecognizer(d)
		annotDB = trajectory.Chain(w.Journeys, trajectory.DefaultChainParams())
	})
	return annotRec, annotDB
}

// BenchmarkAnnotate measures Algorithm 3's annotation loop alone — the
// diagram and the chained database are prebuilt — on one worker, so
// the allocation count isolates the recognizer's per-stay cost (the
// buffered path should stay flat regardless of database size).
func BenchmarkAnnotate(b *testing.B) {
	r, db := annotFixture()
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := AnnotateCtx(ctx, db, r, 1); err != nil {
			b.Fatal(err)
		}
	}
}
