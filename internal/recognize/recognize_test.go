package recognize

import (
	"math/rand"
	"testing"
	"time"

	"csdm/internal/csd"
	"csdm/internal/geo"
	"csdm/internal/index"
	"csdm/internal/poi"
	"csdm/internal/trajectory"
)

var origin = geo.Point{Lon: 121.47, Lat: 31.23}
var proj = geo.NewProjection(origin)

func at(x, y float64) geo.Point { return proj.ToPoint(geo.Meters{X: x, Y: y}) }

func mkPOI(id int64, major poi.Major, x, y float64) poi.POI {
	return poi.POI{ID: id, Location: at(x, y), Minor: poi.MinorsOf(major)[0]}
}

// shopVsRestaurantScene builds the Figure 7 scenario: a popular shop
// unit and a less popular restaurant unit flanking a stay location.
// Returns the POIs and the stay points that establish popularity.
func shopVsRestaurantScene(rng *rand.Rand) ([]poi.POI, []geo.Point) {
	var pois []poi.POI
	var id int64 = 1
	for i := 0; i < 10; i++ { // shop unit ~40 m west
		pois = append(pois, mkPOI(id, poi.ShopMarket, -40+rng.NormFloat64()*5, rng.NormFloat64()*5))
		id++
	}
	for i := 0; i < 6; i++ { // restaurant unit ~60 m east
		pois = append(pois, mkPOI(id, poi.Restaurant, 60+rng.NormFloat64()*5, rng.NormFloat64()*5))
		id++
	}
	// Popularity: many historical stays at the shops, few at the
	// restaurants.
	var stays []geo.Point
	for i := 0; i < 120; i++ {
		stays = append(stays, at(-40+rng.NormFloat64()*15, rng.NormFloat64()*15))
	}
	for i := 0; i < 15; i++ {
		stays = append(stays, at(60+rng.NormFloat64()*15, rng.NormFloat64()*15))
	}
	return pois, stays
}

func TestCSDRecognizerPicksPopularUnit(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pois, stays := shopVsRestaurantScene(rng)
	d := csd.Build(pois, stays, csd.DefaultParams())
	r := NewCSDRecognizer(d)
	if r.Name() != "CSD" {
		t.Fatalf("Name = %q", r.Name())
	}
	got := r.Recognize(origin)
	if !got.Has(poi.ShopMarket) {
		t.Fatalf("Recognize = %v, want shop unit (higher popularity, closer, more POIs)", got)
	}
	if got.Has(poi.Restaurant) {
		t.Fatalf("Recognize = %v leaked restaurant tags from the losing unit", got)
	}
}

func TestCSDRecognizerEmptyNeighborhood(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pois, stays := shopVsRestaurantScene(rng)
	d := csd.Build(pois, stays, csd.DefaultParams())
	r := NewCSDRecognizer(d)
	if got := r.Recognize(at(5000, 5000)); !got.IsEmpty() {
		t.Fatalf("Recognize far away = %v, want empty", got)
	}
}

func TestCSDRecognizerStableUnderGPSNoise(t *testing.T) {
	// The §4.2 robustness claim: jittered stay locations keep getting
	// the same unit's tags far more often with unit voting than with
	// nearest-POI annotation near a unit boundary.
	rng := rand.New(rand.NewSource(3))
	pois, stays := shopVsRestaurantScene(rng)
	d := csd.Build(pois, stays, csd.DefaultParams())
	votingR := NewCSDRecognizer(d)
	nearestR := NewNearestPOIRecognizer(pois, 100, index.KindKDTree)

	base := at(5, 0) // near the boundary region between units
	stable := func(r Recognizer) int {
		ref := r.Recognize(base)
		same := 0
		for i := 0; i < 100; i++ {
			p := at(5+rng.NormFloat64()*20, rng.NormFloat64()*20)
			if r.Recognize(p) == ref {
				same++
			}
		}
		return same
	}
	v, n := stable(votingR), stable(nearestR)
	if v < n {
		t.Fatalf("voting stability %d/100 < nearest-POI %d/100", v, n)
	}
	if v < 80 {
		t.Fatalf("voting stability only %d/100", v)
	}
}

func TestROIRecognizerRegionAnnotation(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	// One hot region chaining across two adjacent venues: shops at x=0,
	// restaurants at x=250, stays along the whole strip.
	var stays []geo.Point
	for i := 0; i < 80; i++ {
		stays = append(stays, at(rng.Float64()*250, rng.NormFloat64()*20))
	}
	var pois []poi.POI
	var id int64 = 1
	for i := 0; i < 10; i++ {
		pois = append(pois, mkPOI(id, poi.ShopMarket, rng.NormFloat64()*20, rng.NormFloat64()*20))
		id++
	}
	for i := 0; i < 10; i++ {
		pois = append(pois, mkPOI(id, poi.Restaurant, 250+rng.NormFloat64()*20, rng.NormFloat64()*20))
		id++
	}
	r := NewROIRecognizer(stays, pois, DefaultROIParams())
	if r.Name() != "ROI" {
		t.Fatalf("Name = %q", r.Name())
	}
	if r.NumRegions() == 0 {
		t.Fatal("no hot regions detected")
	}
	if !r.InRegion(origin) {
		t.Fatal("origin should be inside the hot region")
	}
	// Uncontrolled purity: stay points in one region receive different
	// tag sets depending on where they fall — pure shop tags at one
	// end, mixed in the middle, pure restaurant tags at the other end.
	// This is the weakness the CSD purification step exists to fix.
	west := r.Recognize(at(0, 0))
	mid := r.Recognize(at(125, 0))
	east := r.Recognize(at(250, 0))
	if !west.Has(poi.ShopMarket) || west.Has(poi.Restaurant) {
		t.Fatalf("west tags = %v, want pure shop", west)
	}
	if !east.Has(poi.Restaurant) || east.Has(poi.ShopMarket) {
		t.Fatalf("east tags = %v, want pure restaurant", east)
	}
	if !mid.Has(poi.ShopMarket) || !mid.Has(poi.Restaurant) {
		t.Fatalf("mid tags = %v, want mixed (uncontrolled purity)", mid)
	}
}

func TestROIRecognizerUnannotatedOutsideRegions(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var stays []geo.Point
	for i := 0; i < 40; i++ {
		stays = append(stays, at(rng.NormFloat64()*30, rng.NormFloat64()*30))
	}
	pois := []poi.POI{
		mkPOI(1, poi.Restaurant, 0, 0),
		mkPOI(2, poi.MedicalService, 2000, 0), // isolated hospital, no region
	}
	r := NewROIRecognizer(stays, pois, DefaultROIParams())
	if got := r.Recognize(origin); !got.Has(poi.Restaurant) {
		t.Fatalf("in-region annotation = %v, want restaurant", got)
	}
	// Strictly per [21], only hot regions annotate: the hospital has
	// POIs but no stay density, so recognition fails there.
	if got := r.Recognize(at(2010, 0)); !got.IsEmpty() {
		t.Fatalf("outside regions = %v, want empty", got)
	}
}

func TestROIRecognizerNoRegions(t *testing.T) {
	pois := []poi.POI{mkPOI(1, poi.Restaurant, 0, 0)}
	r := NewROIRecognizer([]geo.Point{origin}, pois, DefaultROIParams())
	if r.NumRegions() != 0 {
		t.Fatalf("regions = %d, want 0", r.NumRegions())
	}
	if got := r.Recognize(origin); !got.IsEmpty() {
		t.Fatalf("no regions should mean no annotation, got %v", got)
	}
}

func TestNearestPOIRecognizer(t *testing.T) {
	pois := []poi.POI{
		mkPOI(1, poi.Restaurant, 0, 0),
		mkPOI(2, poi.ShopMarket, 50, 0),
	}
	r := NewNearestPOIRecognizer(pois, 100, index.KindKDTree)
	if r.Name() != "NearestPOI" {
		t.Fatalf("Name = %q", r.Name())
	}
	if got := r.Recognize(at(10, 0)); !got.Has(poi.Restaurant) {
		t.Fatalf("Recognize = %v", got)
	}
	if got := r.Recognize(at(45, 0)); !got.Has(poi.ShopMarket) {
		t.Fatalf("Recognize = %v", got)
	}
	if got := r.Recognize(at(500, 0)); !got.IsEmpty() {
		t.Fatalf("out of radius = %v", got)
	}
}

func TestAnnotateFillsSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	pois, stays := shopVsRestaurantScene(rng)
	d := csd.Build(pois, stays, csd.DefaultParams())
	r := NewCSDRecognizer(d)

	t0 := time.Date(2015, 4, 6, 8, 0, 0, 0, time.UTC)
	db := []trajectory.SemanticTrajectory{
		{ID: 1, Stays: []trajectory.StayPoint{
			{P: at(-40, 0), T: t0},
			{P: at(60, 0), T: t0.Add(time.Hour)},
		}},
	}
	Annotate(db, r)
	if !db[0].Stays[0].S.Has(poi.ShopMarket) {
		t.Fatalf("stay 0 = %v", db[0].Stays[0].S)
	}
	if !db[0].Stays[1].S.Has(poi.Restaurant) {
		t.Fatalf("stay 1 = %v", db[0].Stays[1].S)
	}
}

func TestAnnotateJourneys(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pois, stays := shopVsRestaurantScene(rng)
	d := csd.Build(pois, stays, csd.DefaultParams())
	r := NewCSDRecognizer(d)
	t0 := time.Date(2015, 4, 6, 8, 0, 0, 0, time.UTC)
	js := []trajectory.Journey{
		{PassengerID: 1, Pickup: at(-40, 0), PickupTime: t0, Dropoff: at(60, 0), DropoffTime: t0.Add(20 * time.Minute)},
		{PassengerID: 1, Pickup: at(62, 0), PickupTime: t0.Add(2 * time.Hour), Dropoff: at(-38, 0), DropoffTime: t0.Add(2*time.Hour + 20*time.Minute)},
	}
	// The scene's anchors are only ~100 m apart, so use a merge radius
	// below that to keep the stays distinct.
	sts := AnnotateJourneys(js, trajectory.ChainParams{MergeDist: 20, MinStays: 3}, r)
	if len(sts) != 1 {
		t.Fatalf("trajectories = %d, want 1", len(sts))
	}
	for i, sp := range sts[0].Stays {
		if sp.S.IsEmpty() {
			t.Fatalf("stay %d unannotated", i)
		}
	}
}
