package shard

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"

	"csdm/internal/ckpt"
	"csdm/internal/csd"
	"csdm/internal/exec"
	"csdm/internal/geo"
	"csdm/internal/index"
	"csdm/internal/poi"
	"csdm/internal/stage"
)

// haloSlackMeters widens every shard's stay-load window beyond the
// geometric R3σ halo. The halo math is exact in the spherical model,
// but the stays' membership test is floating-point Haversine — a stay
// at distance radius-minus-epsilon from an owned POI could in
// principle round a ULP past the exact halo edge. One meter of slack
// dwarfs any such rounding (which is sub-micrometer at city scales)
// while loading a negligible sliver of extra points; membership in a
// POI's kernel support is still decided by exact Haversine against the
// radius, so the slack changes which stays are *loaded*, never which
// are *counted*.
const haloSlackMeters = 1.0

// Config parameterizes a sharded build.
type Config struct {
	// Plan is the tiling (required).
	Plan *Plan
	// Params are the CSD construction parameters.
	Params csd.Params
	// ShardWorkers bounds the shard fan-out (0 = NumCPU). Within a
	// shard the popularity loop is sequential — the shard grid is the
	// parallel axis — so peak stay memory is capped at roughly
	// ShardWorkers × the largest halo's stay count.
	ShardWorkers int
	// Ckpt, when set, checkpoints each shard's popularity vector so an
	// interrupted build resumes at shard granularity.
	Ckpt *ckpt.Manager
}

// Stats reports what one sharded build did.
type Stats struct {
	// Shards is the plan's tile count; ActiveShards own at least one
	// POI.
	Shards       int
	ActiveShards int
	// ResumedShards counts shards whose popularity came from a
	// checkpoint instead of being rebuilt.
	ResumedShards int
	// TotalStays is the source's stay count; LoadedStays sums the halo
	// loads across shards (> TotalStays when halos overlap).
	TotalStays  int
	LoadedStays int
	// MaxShardStays is the largest single shard's halo load — the
	// build's resident-stay high-water mark per worker, and the number
	// BENCH_SHARD.json records as the out-of-core proxy.
	MaxShardStays int
	// MaxShardPOIs is the largest owned POI set.
	MaxShardPOIs int
}

// shardPop is one shard's checkpoint artifact: the owned POI ids and
// their popularity sums, plus enough input fingerprint (owned set,
// total stay count) for a resumed checkpoint to be rejected when the
// plan or the dataset changed. encoding/json round-trips float64
// losslessly (shortest-representation encoding), so resuming preserves
// popularity bits.
type shardPop struct {
	POIs  []int     `json:"pois"`
	Pop   []float64 `json:"pop"`
	Stays int       `json:"stays"`
	Total int       `json:"total_stays"`
}

// Build runs the sharded CSD construction: per-tile popularity over
// halo-loaded stays (each shard a checkpointable stage, fanned out
// under exec.ParallelForSlots), scattered into one global popularity
// vector, then the global phase-2 assembly via csd.BuildFromPopularity.
// The diagram is bit-identical to csd.BuildEnv over the same POIs and
// the source's full stay sequence, for any tiling, worker count and
// index backend — see the package comment and DESIGN.md §5j for why.
func Build(env stage.Env, pois []poi.POI, src StaySource, cfg Config) (*csd.Diagram, Stats, error) {
	var st Stats
	plan := cfg.Plan
	if plan == nil || len(plan.Tiles) == 0 {
		return nil, st, fmt.Errorf("shard: Build needs a plan with at least one tile")
	}
	st.Shards = len(plan.Tiles)
	st.TotalStays = src.Len()
	root := env.StartSpan("shard.build")
	defer root.End()
	tr := env.Trace

	// Assign every POI to its owning tile. One ascending scan keeps
	// each owned list ascending, which keeps the per-shard popularity
	// loop visiting POIs in global id order.
	owned := make([][]int, len(plan.Tiles))
	for i := range pois {
		t := plan.Owner(pois[i].Location)
		owned[t] = append(owned[t], i)
	}

	g := stage.NewGraph(func() stage.Config {
		return stage.Config{Trace: env.Trace, Opt: env.Opt, Store: cfg.Ckpt, CounterPrefix: "shard.stage"}
	})
	kernel := geo.NewGaussianKernel(cfg.Params.R3Sigma)
	totalStays := st.TotalStays

	cells := make([]*stage.Cell[shardPop], len(plan.Tiles))
	for i := range plan.Tiles {
		tile := plan.Tiles[i]
		own := owned[tile.ID]
		// Re-anchor the halo on the owned POIs themselves: ownership is
		// index arithmetic, so a boundary POI can sit a ULP outside its
		// tile's descriptive rectangle. Extending the rect before the
		// expansion restores the guarantee that every owned POI's full
		// R3σ support is inside the load window.
		load := tile.Rect
		for _, pi := range own {
			load = load.Extend(pois[pi].Location)
		}
		load = load.ExpandMeters(plan.HaloMeters + haloSlackMeters)
		cells[tile.ID] = stage.Add(g, stage.Decl{
			Name:     fmt.Sprintf("shard.pop.%dx%d.%d", plan.Rows, plan.Cols, tile.ID),
			Site:     "shard.pop",
			Artifact: "shard-pop",
			File:     fmt.Sprintf("shard-pop.%dx%d.%d.json", plan.Rows, plan.Cols, tile.ID),
		}, func(senv stage.Env) (shardPop, error) {
			sp := shardPop{POIs: own, Pop: make([]float64, len(own)), Total: totalStays}
			if len(own) == 0 || totalStays == 0 {
				return sp, nil
			}
			_, pp, err := src.LoadRect(load)
			if err != nil {
				return sp, err
			}
			sp.Stays = pp.Len()
			if pp.Len() == 0 {
				return sp, nil
			}
			idx := index.NewPacked(senv.Opt.Index, pp, kernel.Radius())
			var buf []int
			for k, pi := range own {
				if err := senv.Ctx.Err(); err != nil {
					return sp, err
				}
				loc := pois[pi].Location
				// Local ascending positions are ascending global stay
				// ids (LoadRect's contract), and every backend
				// classifies membership by exact Haversine — so this
				// sum is the monolithic popularity loop's
				// float-addition chain, term for term.
				buf = idx.WithinAppend(loc, kernel.Radius(), buf[:0])
				sort.Ints(buf)
				sp.Pop[k] = kernel.WeightSumInto(0, loc, pp, buf)
			}
			return sp, nil
		}).Checkpoint(stage.Codec[shardPop]{
			Encode: func(w io.Writer, sp shardPop) error { return json.NewEncoder(w).Encode(sp) },
			Decode: func(r io.Reader) (shardPop, error) {
				var sp shardPop
				if err := json.NewDecoder(r).Decode(&sp); err != nil {
					return sp, err
				}
				if sp.Total != totalStays || len(sp.Pop) != len(own) || !equalInts(sp.POIs, own) {
					return sp, fmt.Errorf("shard: tile %d checkpoint does not match the current plan/dataset", tile.ID)
				}
				return sp, nil
			},
		})
	}

	sp := root.Start("popularity")
	pop := make([]float64, len(pois))
	var mu sync.Mutex
	exec.Note(tr, len(plan.Tiles), exec.Workers(cfg.ShardWorkers))
	err := exec.ParallelForSlots(env.Ctx, cfg.ShardWorkers, len(plan.Tiles), func(_, t int) error {
		res, err := cells[t].Get(env.Ctx)
		if err != nil {
			return err
		}
		mu.Lock()
		defer mu.Unlock()
		// Ownership is a partition, so each pop[pi] is written exactly
		// once across all shards.
		for k, pi := range res.POIs {
			pop[pi] = res.Pop[k]
		}
		st.LoadedStays += res.Stays
		if res.Stays > st.MaxShardStays {
			st.MaxShardStays = res.Stays
		}
		if len(res.POIs) > 0 {
			st.ActiveShards++
		}
		if len(res.POIs) > st.MaxShardPOIs {
			st.MaxShardPOIs = len(res.POIs)
		}
		return nil
	})
	sp.End()
	if err != nil {
		return nil, st, err
	}
	for t := range cells {
		if cells[t].Origin() == stage.OriginResumed {
			st.ResumedShards++
		}
	}
	tr.Add("shard.shards", int64(st.Shards))
	tr.Add("shard.shards.resumed", int64(st.ResumedShards))
	tr.SetGauge("shard.stays.max_resident", float64(st.MaxShardStays))

	d, err := csd.BuildFromPopularity(env, pois, pop, cfg.Params)
	if err != nil {
		return nil, st, err
	}
	return d, st, nil
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
