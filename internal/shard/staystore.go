package shard

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"

	"csdm/internal/geo"
)

// StaySource feeds stay points to shards by region. Implementations
// must uphold the exactness contract: LoadRect returns every stored
// stay whose coordinates fall inside r (inclusive), with ids strictly
// ascending global stay ids (the order the stays were appended in) and
// pts.At(k) returning stay ids[k]'s original coordinate bits. Ascending
// ids are what let a shard reproduce the monolithic build's canonical
// per-POI float-addition order without ever seeing the full dataset.
type StaySource interface {
	// Len returns the total number of stays in the source.
	Len() int
	// LoadRect materializes the stays inside r.
	LoadRect(r geo.Rect) (ids []int, pts *geo.PackedPoints, err error)
}

// MemStays adapts an in-memory stay slice (ids are slice indices).
type MemStays []geo.Point

// Len implements StaySource.
func (m MemStays) Len() int { return len(m) }

// LoadRect implements StaySource.
func (m MemStays) LoadRect(r geo.Rect) ([]int, *geo.PackedPoints, error) {
	var ids []int
	pp := &geo.PackedPoints{}
	for i, p := range m {
		if r.Contains(p) {
			ids = append(ids, i)
			pp.Lon = append(pp.Lon, p.Lon)
			pp.Lat = append(pp.Lat, p.Lat)
		}
	}
	return ids, pp, nil
}

// The on-disk columnar stay store: a fixed header followed by chunks of
// up to chunkCap points, each chunk a count, its coordinate bounding
// rectangle, and the lon/lat columns as raw little-endian float64 —
// geo.PackedPoints' layout, spilled. The bounds let LoadRect skip whole
// chunks without reading their columns, so a shard's resident set is
// the intersecting chunks, not the corpus. No footer: Open discovers
// chunks with a cheap forward scan of the fixed-size chunk headers.
const (
	stayMagic       = "CSDSTAY1"
	stayVersion     = 1
	stayHeaderSize  = len(stayMagic) + 8    // magic + version u32 + chunkCap u32
	chunkHeaderSize = 4 + 4*8               // count u32 + bounds rect (4 × f64)
	// DefaultChunkCap is the default points-per-chunk (64 KiB of
	// coordinate data per chunk).
	DefaultChunkCap = 4096
)

// StoreWriter streams stay points into an on-disk store in append
// order, preserving global stay ids.
type StoreWriter struct {
	f          *os.File
	w          *bufio.Writer
	chunkCap   int
	lons, lats []float64
	total      int
}

// CreateStayStore creates (truncates) the store at path. chunkCap <= 0
// selects DefaultChunkCap.
func CreateStayStore(path string, chunkCap int) (*StoreWriter, error) {
	if chunkCap <= 0 {
		chunkCap = DefaultChunkCap
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("shard: create stay store: %w", err)
	}
	w := &StoreWriter{f: f, w: bufio.NewWriterSize(f, 1<<16), chunkCap: chunkCap}
	var hdr [16]byte
	copy(hdr[:8], stayMagic)
	binary.LittleEndian.PutUint32(hdr[8:12], stayVersion)
	binary.LittleEndian.PutUint32(hdr[12:16], uint32(chunkCap))
	if _, err := w.w.Write(hdr[:]); err != nil {
		f.Close()
		return nil, err
	}
	return w, nil
}

// Add appends one stay point (the next global id).
func (w *StoreWriter) Add(p geo.Point) error {
	w.lons = append(w.lons, p.Lon)
	w.lats = append(w.lats, p.Lat)
	w.total++
	if len(w.lons) >= w.chunkCap {
		return w.flush()
	}
	return nil
}

// Append appends pts in order.
func (w *StoreWriter) Append(pts []geo.Point) error {
	for _, p := range pts {
		if err := w.Add(p); err != nil {
			return err
		}
	}
	return nil
}

// Len returns the number of stays written so far.
func (w *StoreWriter) Len() int { return w.total }

func (w *StoreWriter) flush() error {
	n := len(w.lons)
	if n == 0 {
		return nil
	}
	var hdr [chunkHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(n))
	bounds := geo.Rect{Min: geo.Point{Lon: w.lons[0], Lat: w.lats[0]}, Max: geo.Point{Lon: w.lons[0], Lat: w.lats[0]}}
	for i := 1; i < n; i++ {
		bounds = bounds.Extend(geo.Point{Lon: w.lons[i], Lat: w.lats[i]})
	}
	binary.LittleEndian.PutUint64(hdr[4:12], math.Float64bits(bounds.Min.Lon))
	binary.LittleEndian.PutUint64(hdr[12:20], math.Float64bits(bounds.Min.Lat))
	binary.LittleEndian.PutUint64(hdr[20:28], math.Float64bits(bounds.Max.Lon))
	binary.LittleEndian.PutUint64(hdr[28:36], math.Float64bits(bounds.Max.Lat))
	if _, err := w.w.Write(hdr[:]); err != nil {
		return err
	}
	buf := make([]byte, 8*n)
	for i, v := range w.lons {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
	}
	if _, err := w.w.Write(buf); err != nil {
		return err
	}
	for i, v := range w.lats {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
	}
	if _, err := w.w.Write(buf); err != nil {
		return err
	}
	w.lons = w.lons[:0]
	w.lats = w.lats[:0]
	return nil
}

// Close flushes the tail chunk and syncs the file.
func (w *StoreWriter) Close() error {
	if err := w.flush(); err != nil {
		w.f.Close()
		return err
	}
	if err := w.w.Flush(); err != nil {
		w.f.Close()
		return err
	}
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

type stayChunk struct {
	off    int64 // file offset of the coordinate columns
	start  int   // global id of the chunk's first stay
	count  int
	bounds geo.Rect
}

// StayStore is the read side: an open store whose chunk directory is
// resident but whose coordinate columns load on demand, per LoadRect.
// LoadRect is safe for concurrent use (reads go through ReadAt).
type StayStore struct {
	f      *os.File
	chunks []stayChunk
	total  int
}

// OpenStayStore opens the store at path and scans its chunk directory.
func OpenStayStore(path string) (*StayStore, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("shard: open stay store: %w", err)
	}
	var hdr [16]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		f.Close()
		return nil, fmt.Errorf("shard: stay store header: %w", err)
	}
	if string(hdr[:8]) != stayMagic {
		f.Close()
		return nil, fmt.Errorf("shard: %s is not a stay store (bad magic)", path)
	}
	if v := binary.LittleEndian.Uint32(hdr[8:12]); v != stayVersion {
		f.Close()
		return nil, fmt.Errorf("shard: stay store version %d, want %d", v, stayVersion)
	}
	s := &StayStore{f: f}
	off := int64(stayHeaderSize)
	var ch [chunkHeaderSize]byte
	for {
		_, err := f.ReadAt(ch[:], off)
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("shard: stay store chunk directory: %w", err)
		}
		n := int(binary.LittleEndian.Uint32(ch[0:4]))
		if n <= 0 {
			f.Close()
			return nil, fmt.Errorf("shard: stay store: empty chunk at offset %d", off)
		}
		s.chunks = append(s.chunks, stayChunk{
			off:   off + chunkHeaderSize,
			start: s.total,
			count: n,
			bounds: geo.Rect{
				Min: geo.Point{Lon: math.Float64frombits(binary.LittleEndian.Uint64(ch[4:12])), Lat: math.Float64frombits(binary.LittleEndian.Uint64(ch[12:20]))},
				Max: geo.Point{Lon: math.Float64frombits(binary.LittleEndian.Uint64(ch[20:28])), Lat: math.Float64frombits(binary.LittleEndian.Uint64(ch[28:36]))},
			},
		})
		s.total += n
		off += chunkHeaderSize + int64(16*n)
	}
	return s, nil
}

// Len implements StaySource.
func (s *StayStore) Len() int { return s.total }

// Close closes the underlying file.
func (s *StayStore) Close() error { return s.f.Close() }

// LoadRect implements StaySource: it reads only the chunks whose
// bounds intersect r and filters their points, so memory is
// proportional to the matching region, never the store.
func (s *StayStore) LoadRect(r geo.Rect) ([]int, *geo.PackedPoints, error) {
	var ids []int
	pp := &geo.PackedPoints{}
	var buf []byte
	for _, c := range s.chunks {
		if !r.Intersects(c.bounds) {
			continue
		}
		need := 16 * c.count
		if cap(buf) < need {
			buf = make([]byte, need)
		}
		buf = buf[:need]
		if _, err := s.f.ReadAt(buf, c.off); err != nil {
			return nil, nil, fmt.Errorf("shard: stay store read chunk at %d: %w", c.off, err)
		}
		lats := buf[8*c.count:]
		for i := 0; i < c.count; i++ {
			lon := math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
			lat := math.Float64frombits(binary.LittleEndian.Uint64(lats[8*i:]))
			if r.Contains(geo.Point{Lon: lon, Lat: lat}) {
				ids = append(ids, c.start+i)
				pp.Lon = append(pp.Lon, lon)
				pp.Lat = append(pp.Lat, lat)
			}
		}
	}
	return ids, pp, nil
}
