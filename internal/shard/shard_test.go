package shard

import (
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"

	"csdm/internal/ckpt"
	"csdm/internal/csd"
	"csdm/internal/exec"
	"csdm/internal/fault"
	"csdm/internal/geo"
	"csdm/internal/index"
	"csdm/internal/obs"
	"csdm/internal/poi"
	"csdm/internal/stage"
	"csdm/internal/synth"
)

func testWorkload(t testing.TB) ([]poi.POI, []geo.Point) {
	t.Helper()
	cfg := synth.DefaultConfig()
	cfg.Seed = 11
	cfg.NumPOIs = 300
	cfg.NumPassengers = 60
	cfg.Days = 3
	city := synth.NewCity(cfg)
	w := city.GenerateWorkload()
	stays := make([]geo.Point, 0, 2*len(w.Journeys))
	for _, j := range w.Journeys {
		stays = append(stays, j.Pickup, j.Dropoff)
	}
	return city.POIs, stays
}

func envWith(workers int, kind index.Kind) stage.Env {
	env := stage.Background()
	env.Trace = obs.New()
	env.Opt = exec.Options{Workers: workers, Index: kind}
	return env
}

func TestPlanPartitionAndHalo(t *testing.T) {
	extent := geo.Rect{Min: geo.Point{Lon: 121.0, Lat: 31.0}, Max: geo.Point{Lon: 121.5, Lat: 31.4}}
	plan, err := NewPlan(extent, 3, 4, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Tiles) != 12 {
		t.Fatalf("tiles = %d, want 12", len(plan.Tiles))
	}
	for _, tile := range plan.Tiles {
		if tile.ID != tile.Row*plan.Cols+tile.Col {
			t.Fatalf("tile %d at (%d,%d): bad row-major id", tile.ID, tile.Row, tile.Col)
		}
		if !tile.Halo.Contains(tile.Rect.Min) || !tile.Halo.Contains(tile.Rect.Max) {
			t.Fatalf("tile %d halo does not contain its rect", tile.ID)
		}
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		// Points inside and slightly outside the extent all get exactly
		// one owner, and in-extent points land in a tile whose halo
		// contains them.
		p := geo.Point{
			Lon: extent.Min.Lon + (rng.Float64()*1.2-0.1)*(extent.Max.Lon-extent.Min.Lon),
			Lat: extent.Min.Lat + (rng.Float64()*1.2-0.1)*(extent.Max.Lat-extent.Min.Lat),
		}
		o := plan.Owner(p)
		if o < 0 || o >= len(plan.Tiles) {
			t.Fatalf("Owner(%v) = %d out of range", p, o)
		}
		if extent.Contains(p) && !plan.Tiles[o].Halo.Contains(p) {
			t.Fatalf("in-extent point %v assigned to tile %d whose halo misses it", p, o)
		}
	}
	if _, err := NewPlan(extent, 0, 2, 100); err == nil {
		t.Fatal("NewPlan accepted a 0-row tiling")
	}
}

func TestParseTiling(t *testing.T) {
	r, c, err := ParseTiling("3x4")
	if err != nil || r != 3 || c != 4 {
		t.Fatalf("ParseTiling(3x4) = %d,%d,%v", r, c, err)
	}
	if _, _, err := ParseTiling("0x4"); err == nil {
		t.Fatal("ParseTiling accepted 0x4")
	}
	for _, bad := range []string{"", "3", "3x", "ax2", "3x3x3"} {
		if _, _, err := ParseTiling(bad); err == nil {
			t.Fatalf("ParseTiling accepted %q", bad)
		}
	}
}

func TestStayStoreRoundTrip(t *testing.T) {
	_, stays := testWorkload(t)
	path := filepath.Join(t.TempDir(), "stays.csdc")
	w, err := CreateStayStore(path, 64) // small chunks: force many
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(stays); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	s, err := OpenStayStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Len() != len(stays) {
		t.Fatalf("Len = %d, want %d", s.Len(), len(stays))
	}

	// A rect covering everything returns the full sequence, ids 0..n-1
	// ascending with exact coordinate bits.
	all := geo.BoundingRect(stays)
	ids, pp, err := s.LoadRect(all)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != len(stays) {
		t.Fatalf("full LoadRect returned %d of %d stays", len(ids), len(stays))
	}
	for k, id := range ids {
		if id != k {
			t.Fatalf("ids[%d] = %d, want ascending dense ids", k, id)
		}
		if pp.At(k) != stays[id] {
			t.Fatalf("stay %d: %v != %v (coordinate bits must round-trip)", id, pp.At(k), stays[id])
		}
	}

	// A sub-rectangle matches the in-memory reference filter exactly.
	sub := geo.Rect{Min: all.Min, Max: all.Center()}
	wantIDs, wantPP, _ := MemStays(stays).LoadRect(sub)
	ids, pp, err = s.LoadRect(sub)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ids, wantIDs) {
		t.Fatalf("sub-rect ids: got %d stays, want %d", len(ids), len(wantIDs))
	}
	for k := range ids {
		if pp.At(k) != wantPP.At(k) {
			t.Fatalf("sub-rect stay %d differs", ids[k])
		}
	}
}

func requireSame(t *testing.T, want, got *csd.Diagram) {
	t.Helper()
	if len(want.Pop) != len(got.Pop) {
		t.Fatalf("Pop length: want %d, got %d", len(want.Pop), len(got.Pop))
	}
	for i := range want.Pop {
		if want.Pop[i] != got.Pop[i] {
			t.Fatalf("Pop[%d]: want %v, got %v (bit mismatch)", i, want.Pop[i], got.Pop[i])
		}
	}
	if !reflect.DeepEqual(want.Units, got.Units) {
		t.Fatalf("units differ: want %d units, got %d", len(want.Units), len(got.Units))
	}
}

func TestShardedBuildMatchesMonolithic(t *testing.T) {
	pois, stays := testWorkload(t)
	params := csd.DefaultParams()
	params.KeepSingletons = true
	extent := geo.BoundingRect(poi.Locations(pois))

	for _, tiling := range [][2]int{{2, 2}, {3, 3}} {
		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("%dx%d/w%d", tiling[0], tiling[1], workers), func(t *testing.T) {
				env := envWith(workers, index.KindGrid)
				ref, err := csd.BuildEnv(env, pois, stays, params)
				if err != nil {
					t.Fatal(err)
				}
				plan, err := NewPlan(extent, tiling[0], tiling[1], params.R3Sigma)
				if err != nil {
					t.Fatal(err)
				}
				d, st, err := Build(env, pois, MemStays(stays), Config{Plan: plan, Params: params, ShardWorkers: workers})
				if err != nil {
					t.Fatal(err)
				}
				requireSame(t, ref, d)
				if st.TotalStays != len(stays) || st.MaxShardStays >= st.TotalStays {
					t.Fatalf("stats = %+v: expected every shard to load a strict subset", st)
				}

				// Same again through the on-disk store: the out-of-core
				// path must not change a single bit.
				path := filepath.Join(t.TempDir(), "stays.csdc")
				w, err := CreateStayStore(path, 128)
				if err != nil {
					t.Fatal(err)
				}
				if err := w.Append(stays); err != nil {
					t.Fatal(err)
				}
				if err := w.Close(); err != nil {
					t.Fatal(err)
				}
				s, err := OpenStayStore(path)
				if err != nil {
					t.Fatal(err)
				}
				defer s.Close()
				d2, _, err := Build(env, pois, s, Config{Plan: plan, Params: params, ShardWorkers: workers})
				if err != nil {
					t.Fatal(err)
				}
				requireSame(t, ref, d2)
			})
		}
	}
}

// TestShardedBuildResumes injects a fault into the third shard stage,
// watches the build fail, then re-runs against the same checkpoint
// directory: the completed shards resume instead of rebuilding and the
// final diagram is still bit-identical to the monolithic reference.
func TestShardedBuildResumes(t *testing.T) {
	pois, stays := testWorkload(t)
	params := csd.DefaultParams()
	params.KeepSingletons = true
	extent := geo.BoundingRect(poi.Locations(pois))
	plan, err := NewPlan(extent, 2, 2, params.R3Sigma)
	if err != nil {
		t.Fatal(err)
	}

	env := envWith(1, index.KindGrid)
	ref, err := csd.BuildEnv(env, pois, stays, params)
	if err != nil {
		t.Fatal(err)
	}

	mgr, err := ckpt.New(t.TempDir(), env.Trace)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Plan: plan, Params: params, ShardWorkers: 1, Ckpt: mgr}

	in, err := fault.Parse("shard.pop:error:3", 1)
	if err != nil {
		t.Fatal(err)
	}
	fault.Activate(in)
	_, _, err = Build(env, pois, MemStays(stays), cfg)
	fault.Activate(nil)
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("faulted build err = %v, want injected fault", err)
	}

	d, st, err := Build(env, pois, MemStays(stays), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.ResumedShards != 2 {
		t.Fatalf("ResumedShards = %d, want 2 (the shards that completed before the fault)", st.ResumedShards)
	}
	requireSame(t, ref, d)

	// A third run resumes everything.
	d2, st2, err := Build(env, pois, MemStays(stays), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st2.ResumedShards != st2.Shards {
		t.Fatalf("full resume: ResumedShards = %d, want %d", st2.ResumedShards, st2.Shards)
	}
	requireSame(t, ref, d2)
}

// TestShardedBuildRejectsStaleCheckpoint grows the dataset between
// runs: checkpoints fingerprint the total stay count, so the resumed
// values must be discarded and rebuilt, not silently reused.
func TestShardedBuildRejectsStaleCheckpoint(t *testing.T) {
	pois, stays := testWorkload(t)
	params := csd.DefaultParams()
	params.KeepSingletons = true
	extent := geo.BoundingRect(poi.Locations(pois))
	plan, err := NewPlan(extent, 2, 2, params.R3Sigma)
	if err != nil {
		t.Fatal(err)
	}
	env := envWith(1, index.KindGrid)
	mgr, err := ckpt.New(t.TempDir(), env.Trace)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Plan: plan, Params: params, ShardWorkers: 1, Ckpt: mgr}

	if _, _, err := Build(env, pois, MemStays(stays[:len(stays)/2]), cfg); err != nil {
		t.Fatal(err)
	}
	ref, err := csd.BuildEnv(env, pois, stays, params)
	if err != nil {
		t.Fatal(err)
	}
	d, st, err := Build(env, pois, MemStays(stays), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.ResumedShards != 0 {
		t.Fatalf("ResumedShards = %d after dataset grew, want 0", st.ResumedShards)
	}
	requireSame(t, ref, d)
}
