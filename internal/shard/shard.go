// Package shard partitions a CSD build into geographic tiles so that
// country-scale inputs run with memory bounded by the largest tile's
// halo, not the whole corpus — while producing a diagram bit-identical
// to the monolithic build.
//
// The decomposition leans on one property of the popularity model
// (Eq. 2–3): the Gaussian kernel has compact R3σ support, so a POI's
// popularity depends only on the stay points within R3σ of it. Each
// tile owns a disjoint set of POIs (ownership is pure index arithmetic
// over the extent, so every POI has exactly one owner) and loads the
// stay points inside its halo — the owned region expanded by at least
// R3σ. A stay near a tile boundary is therefore *loaded* by several
// tiles but *counted* once per POI, because each POI is summed by its
// single owner. Per-POI sums run in ascending stay-id order against an
// exact-Haversine range structure, so the float-addition chain is the
// monolithic one bit for bit (see DESIGN.md §5j).
//
// Everything after popularity (Algorithms 1–2, unit merging) runs
// globally over the per-POI vector via csd.BuildFromPopularity —
// merging in particular is a global union-find whose candidate pairs
// are bounded by MergeDist, so only units near tile boundaries (halo
// units) can actually fuse across shards.
package shard

import (
	"fmt"
	"strconv"
	"strings"

	"csdm/internal/geo"
)

// Tile is one shard of the plan: a rectangle of owned territory plus
// the conservative halo its stay loads must cover.
type Tile struct {
	// ID is the tile's index in Plan.Tiles (row-major).
	ID int
	// Row and Col locate the tile in the grid.
	Row, Col int
	// Rect is the owned region. Ownership is decided by Plan.Owner's
	// index arithmetic, not by Rect containment — Rect is descriptive
	// (floating-point rounding can put a boundary point a ULP outside
	// the rectangle its arithmetic owner implies, which is why Build
	// re-anchors each halo on the owned POIs themselves).
	Rect geo.Rect
	// Halo is Rect expanded by the plan's halo distance — the region a
	// shard's stay loads must at least cover for popularity exactness.
	Halo geo.Rect
}

// Plan is a rows×cols tiling of an extent.
type Plan struct {
	Extent     geo.Rect
	Rows, Cols int
	// HaloMeters is the halo distance (the kernel's R3σ for exactness).
	HaloMeters float64
	// Tiles lists the shards in row-major order.
	Tiles []Tile
}

// NewPlan tiles extent into rows×cols shards with the given halo.
func NewPlan(extent geo.Rect, rows, cols int, haloMeters float64) (*Plan, error) {
	if rows < 1 || cols < 1 {
		return nil, fmt.Errorf("shard: tiling must be at least 1x1, got %dx%d", rows, cols)
	}
	if haloMeters < 0 {
		return nil, fmt.Errorf("shard: negative halo %v", haloMeters)
	}
	p := &Plan{Extent: extent, Rows: rows, Cols: cols, HaloMeters: haloMeters}
	lonSpan := extent.Max.Lon - extent.Min.Lon
	latSpan := extent.Max.Lat - extent.Min.Lat
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			rect := geo.Rect{
				Min: geo.Point{
					Lon: extent.Min.Lon + lonSpan*float64(c)/float64(cols),
					Lat: extent.Min.Lat + latSpan*float64(r)/float64(rows),
				},
				Max: geo.Point{
					Lon: extent.Min.Lon + lonSpan*float64(c+1)/float64(cols),
					Lat: extent.Min.Lat + latSpan*float64(r+1)/float64(rows),
				},
			}
			p.Tiles = append(p.Tiles, Tile{
				ID:   len(p.Tiles),
				Row:  r,
				Col:  c,
				Rect: rect,
				Halo: rect.ExpandMeters(haloMeters),
			})
		}
	}
	return p, nil
}

// Owner returns the ID of the tile that owns pt. Ownership is a true
// partition: index arithmetic with clamping assigns every point —
// including points on tile boundaries or outside the extent — to
// exactly one tile.
func (p *Plan) Owner(pt geo.Point) int {
	row := gridIndex(pt.Lat, p.Extent.Min.Lat, p.Extent.Max.Lat, p.Rows)
	col := gridIndex(pt.Lon, p.Extent.Min.Lon, p.Extent.Max.Lon, p.Cols)
	return row*p.Cols + col
}

func gridIndex(v, lo, hi float64, n int) int {
	span := hi - lo
	if span <= 0 {
		return 0
	}
	i := int((v - lo) / span * float64(n))
	if i < 0 {
		return 0
	}
	if i >= n {
		return n - 1
	}
	return i
}

// ParseTiling parses a "RxC" flag value ("3x3", "2x4") into rows and
// columns.
func ParseTiling(s string) (rows, cols int, err error) {
	parts := strings.Split(strings.ToLower(strings.TrimSpace(s)), "x")
	if len(parts) == 2 {
		r, errR := strconv.Atoi(parts[0])
		c, errC := strconv.Atoi(parts[1])
		if errR == nil && errC == nil && r >= 1 && c >= 1 {
			return r, c, nil
		}
	}
	return 0, 0, fmt.Errorf("shard: bad tiling %q (want RxC, e.g. 3x3)", s)
}
