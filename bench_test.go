package csdm

// This file regenerates every table and figure of the paper's
// evaluation as Go benchmarks — one benchmark per exhibit — plus the
// ablation benchmarks DESIGN.md calls out. Each benchmark reports the
// headline quantity of its exhibit as custom metrics, so
// `go test -bench=. -benchmem` prints the reproduced numbers next to
// the timings. The shared synthetic environment is built once.

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"testing"

	"csdm/internal/core"
	"csdm/internal/csd"
	"csdm/internal/experiments"
	"csdm/internal/geo"
	"csdm/internal/index"
	"csdm/internal/metrics"
	"csdm/internal/pattern"
	"csdm/internal/poi"
	"csdm/internal/recognize"
	"csdm/internal/synth"
)

// benchScale keeps every exhibit benchmark in the seconds range while
// staying large enough that thin flows (hospital visits) still clear
// their drill-down support thresholds.
func benchScale() experiments.Scale {
	return experiments.Scale{Seed: 1, NumPOIs: 3000, NumPassengers: 600, Days: 14}
}

var (
	benchOnce sync.Once
	benchEnv  *experiments.Env
)

func sharedEnv() *experiments.Env {
	benchOnce.Do(func() {
		benchEnv = experiments.Setup(benchScale())
	})
	return benchEnv
}

// benchParams scales σ to the benchmark workload.
func benchParams() MiningParams {
	p := experiments.MiningParams()
	p.Sigma = 20
	return p
}

func BenchmarkTable1CheckinBias(b *testing.B) {
	env := sharedEnv()
	var res []experiments.Table1Result
	for i := 0; i < b.N; i++ {
		res = env.Table1()
	}
	b.ReportMetric(res[1].StationShare*100, "tokyo-station-%")
	b.ReportMetric(res[0].MedicalShare*100, "ny-medical-%")
}

func BenchmarkTable3POICategories(b *testing.B) {
	env := sharedEnv()
	var rows []experiments.Table3Row
	for i := 0; i < b.N; i++ {
		rows = env.Table3()
	}
	b.ReportMetric(rows[0].Percentage*100, "residence-%")
}

func BenchmarkFig6CSDConstruction(b *testing.B) {
	env := sharedEnv()
	stays := env.Pipeline.StayPoints()
	params := core.DefaultConfig().CSD
	var d *csd.Diagram
	for i := 0; i < b.N; i++ {
		d = csd.Build(env.City.POIs, stays, params)
	}
	b.ReportMetric(float64(len(d.Units)), "units")
	b.ReportMetric(d.MeanUnitPurity(), "purity")
}

func BenchmarkFig8StayPoints(b *testing.B) {
	env := sharedEnv()
	var r experiments.Fig8Result
	for i := 0; i < b.N; i++ {
		r = env.Fig8()
	}
	b.ReportMetric(float64(r.StayPoints), "staypoints")
	b.ReportMetric(r.MeanTripMin, "trip-min")
}

func BenchmarkFig9SparsityDistribution(b *testing.B) {
	env := sharedEnv()
	var r experiments.Fig9Result
	for i := 0; i < b.N; i++ {
		r = env.Fig9(benchParams())
	}
	b.ReportMetric(r.Summaries["CSD-PM"].MeanSparsity, "csdpm-ss")
	b.ReportMetric(r.Summaries["ROI-PM"].MeanSparsity, "roipm-ss")
}

func BenchmarkFig10ConsistencyBoxes(b *testing.B) {
	env := sharedEnv()
	var r experiments.Fig10Result
	for i := 0; i < b.N; i++ {
		r = env.Fig10(benchParams())
	}
	b.ReportMetric(r.Boxes["CSD-PM"].Mean, "csdpm-sc")
	b.ReportMetric(r.Boxes["ROI-PM"].Mean, "roipm-sc")
}

func BenchmarkFig11SupportSweep(b *testing.B) {
	env := sharedEnv()
	var r experiments.SweepResult
	for i := 0; i < b.N; i++ {
		r = env.Fig11()
	}
	b.ReportMetric(float64(len(r.Points)), "sweep-points")
}

func BenchmarkFig12DensitySweep(b *testing.B) {
	env := sharedEnv()
	var r experiments.SweepResult
	for i := 0; i < b.N; i++ {
		r = env.Fig12()
	}
	b.ReportMetric(float64(len(r.Points)), "sweep-points")
}

func BenchmarkFig13TemporalSweep(b *testing.B) {
	env := sharedEnv()
	var r experiments.SweepResult
	for i := 0; i < b.N; i++ {
		r = env.Fig13()
	}
	b.ReportMetric(float64(len(r.Points)), "sweep-points")
}

func BenchmarkFig14TimeBuckets(b *testing.B) {
	env := sharedEnv()
	var r []experiments.Fig14BucketResult
	for i := 0; i < b.N; i++ {
		r = env.Fig14(benchParams())
	}
	weekday, weekend := 0, 0
	for _, br := range r {
		if br.Bucket < 3 {
			weekday += br.NumPatterns
		} else {
			weekend += br.NumPatterns
		}
	}
	b.ReportMetric(float64(weekday), "weekday-patterns")
	b.ReportMetric(float64(weekend), "weekend-patterns")
}

func BenchmarkFig14gAirport(b *testing.B) {
	env := sharedEnv()
	var r experiments.Fig14gResult
	for i := 0; i < b.N; i++ {
		r = env.Fig14g(benchParams())
	}
	b.ReportMetric(r.AirportShare*100, "airport-trip-%")
	b.ReportMetric(float64(r.AirportPatterns), "airport-patterns")
}

func BenchmarkFig14hHospital(b *testing.B) {
	env := sharedEnv()
	var r experiments.Fig14hResult
	for i := 0; i < b.N; i++ {
		r = env.Fig14h(benchParams())
	}
	b.ReportMetric(float64(r.HospitalPatterns), "hospital-patterns")
	b.ReportMetric(r.CheckinShareNY*100, "ny-medical-checkin-%")
}

// --- Ablations (DESIGN.md §7) -------------------------------------

// BenchmarkAblationVotingVsNearest contrasts Algorithm 3's unit voting
// with naive nearest-POI annotation under GPS jitter: the metric is the
// fraction of 200 jittered probes around busy anchors whose label
// matches the unjittered one.
func BenchmarkAblationVotingVsNearest(b *testing.B) {
	env := sharedEnv()
	d := env.Pipeline.Diagram()
	voting := recognize.NewCSDRecognizer(d)
	nearest := recognize.NewNearestPOIRecognizer(env.City.POIs, 100, env.Cfg.Index)
	proj := env.City.Proj

	stability := func(r recognize.Recognizer) float64 {
		same, total := 0, 0
		for s := 0; s < 20; s++ {
			anchor := env.City.Sites[s].Center
			ref := r.Recognize(anchor)
			if ref.IsEmpty() {
				continue
			}
			m := proj.ToMeters(anchor)
			for k := 0; k < 10; k++ {
				jit := geo.Meters{X: m.X + float64(k%5-2)*12, Y: m.Y + float64(k/5-1)*12}
				if r.Recognize(proj.ToPoint(jit)) == ref {
					same++
				}
				total++
			}
		}
		if total == 0 {
			return 0
		}
		return float64(same) / float64(total)
	}

	var v, n float64
	for i := 0; i < b.N; i++ {
		v = stability(voting)
		n = stability(nearest)
	}
	b.ReportMetric(v, "voting-stability")
	b.ReportMetric(n, "nearest-stability")
}

// BenchmarkAblationPurification contrasts recognition accuracy with
// Algorithm 2 enabled and disabled. The synthetic city knows ground
// truth — each stay happens at a site with known categories — so the
// metric is the mean Jaccard overlap between the recognized tags and
// the true venue categories. Without purification, mixed coarse
// clusters blanket their whole extent with union tags, and accuracy at
// single-purpose venues near them drops.
func BenchmarkAblationPurification(b *testing.B) {
	env := sharedEnv()
	stays := env.Pipeline.StayPoints()
	paramsOn := core.DefaultConfig().CSD
	paramsOff := paramsOn
	paramsOff.SkipPurification = true

	accuracy := func(r recognize.Recognizer) float64 {
		var sum float64
		n := 0
		for s := 0; s < len(env.City.Sites); s++ {
			site := env.City.Sites[s]
			var truth poi.Semantics
			for _, mj := range site.Majors {
				truth = truth.Add(mj)
			}
			got := r.Recognize(site.Center)
			if got.IsEmpty() {
				continue
			}
			inter := 0
			union := 0
			for mj := 0; mj < poi.NumMajors; mj++ {
				in := got.Has(poi.Major(mj))
				tr := truth.Has(poi.Major(mj))
				if in && tr {
					inter++
				}
				if in || tr {
					union++
				}
			}
			if union > 0 {
				sum += float64(inter) / float64(union)
				n++
			}
		}
		if n == 0 {
			return 0
		}
		return sum / float64(n)
	}

	var accOn, accOff float64
	for i := 0; i < b.N; i++ {
		dOn := csd.Build(env.City.POIs, stays, paramsOn)
		dOff := csd.Build(env.City.POIs, stays, paramsOff)
		accOn = accuracy(recognize.NewCSDRecognizer(dOn))
		accOff = accuracy(recognize.NewCSDRecognizer(dOff))
	}
	b.ReportMetric(accOn, "accuracy-on")
	b.ReportMetric(accOff, "accuracy-off")
}

// BenchmarkAblationMerging contrasts unit counts with the merging step
// enabled and disabled (fragmentation).
func BenchmarkAblationMerging(b *testing.B) {
	env := sharedEnv()
	stays := env.Pipeline.StayPoints()
	on := core.DefaultConfig().CSD
	off := on
	off.SkipMerging = true
	var uOn, uOff int
	for i := 0; i < b.N; i++ {
		uOn = len(csd.Build(env.City.POIs, stays, on).Units)
		uOff = len(csd.Build(env.City.POIs, stays, off).Units)
	}
	b.ReportMetric(float64(uOn), "units-merged")
	b.ReportMetric(float64(uOff), "units-unmerged")
}

// BenchmarkAblationOpticsVsDBSCAN contrasts Algorithm 4's OPTICS-based
// extraction against the fixed-ε SDBSCAN refinement on the same
// database.
func BenchmarkAblationOpticsVsDBSCAN(b *testing.B) {
	env := sharedEnv()
	params := benchParams()
	var optics, dbscan metrics.Summary
	for i := 0; i < b.N; i++ {
		optics = metrics.Summarize(env.Pipeline.Mine(core.CSDPM, params))
		dbscan = metrics.Summarize(env.Pipeline.Mine(core.CSDSDBSCAN, params))
	}
	b.ReportMetric(float64(optics.NumPatterns), "optics-patterns")
	b.ReportMetric(float64(dbscan.NumPatterns), "dbscan-patterns")
}

// BenchmarkIndexComparison races the three spatial indexes on the
// workload's range query (R3σ around stay points over the POI set).
func BenchmarkIndexComparison(b *testing.B) {
	env := sharedEnv()
	pts := poi.Locations(env.City.POIs)
	stays := env.Pipeline.StayPoints()
	for _, kind := range []index.Kind{index.KindGrid, index.KindKDTree, index.KindRTree} {
		b.Run(kind.String(), func(b *testing.B) {
			idx := index.New(kind, pts, 100)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				idx.Within(stays[i%len(stays)], 100)
			}
		})
	}
}

// BenchmarkMine times the extraction stage alone (the recognition
// artifacts are prebuilt), with no trace attached. The sub-benchmarks
// pin the worker budget along the scaling curve {1, 4, NumCPU}:
// workers-1 is the sequential baseline and the higher counts measure
// the execution layer's speedup on the same (bit-identical) mining
// output; workers-4 is the curve point the CI efficiency gate reads.
func BenchmarkMine(b *testing.B) {
	params := benchParams()
	set := map[int]bool{1: true, 4: true, runtime.NumCPU(): true}
	counts := make([]int, 0, len(set))
	for n := range set {
		counts = append(counts, n)
	}
	sort.Ints(counts)
	for _, workers := range counts {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			cfg := core.DefaultConfig()
			cfg.Workers = workers
			env := experiments.SetupConfig(benchScale(), cfg)
			env.Pipeline.Database(core.RecCSD)
			b.ResetTimer()
			var n int
			for i := 0; i < b.N; i++ {
				n = len(env.Pipeline.Mine(core.CSDPM, params))
			}
			b.ReportMetric(float64(n), "patterns")
		})
	}
}

// BenchmarkEndToEndCSDPM times the full pipeline — diagram, recognition,
// extraction — from cold on a fresh pipeline.
func BenchmarkEndToEndCSDPM(b *testing.B) {
	scale := benchScale()
	cfg := synth.DefaultConfig()
	cfg.Seed = scale.Seed
	cfg.NumPOIs = scale.NumPOIs
	cfg.NumPassengers = scale.NumPassengers
	cfg.Days = scale.Days
	city := synth.NewCity(cfg)
	w := city.GenerateWorkload()
	params := benchParams()
	b.ResetTimer()
	var n int
	for i := 0; i < b.N; i++ {
		miner := NewMiner(city.POIs, w.Journeys, DefaultConfig())
		n = len(miner.Mine(CSDPM, params))
	}
	b.ReportMetric(float64(n), "patterns")
}

// BenchmarkAblationSemanticFree contrasts CSD-PM against the grid-based
// T-Pattern baseline of Giannotti et al. [13]: the pre-semantic family
// the paper's §2 argues cannot support semantic queries. The metric
// pair shows how many flows each finds; only CSD-PM's carry semantics.
func BenchmarkAblationSemanticFree(b *testing.B) {
	env := sharedEnv()
	params := benchParams()
	db := env.Pipeline.Database(core.RecCSD)
	var csdpm, tpat int
	for i := 0; i < b.N; i++ {
		csdpm = len(env.Pipeline.Mine(core.CSDPM, params))
		tpat = len(pattern.Compat{E: pattern.NewTPattern()}.Extract(db, params))
	}
	b.ReportMetric(float64(csdpm), "csdpm-patterns")
	b.ReportMetric(float64(tpat), "tpattern-patterns")
}
