package csdm

import (
	"encoding/json"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"testing"

	"csdm/internal/core"
	"csdm/internal/experiments"
)

// BenchMineResult is one BenchmarkMine measurement in the machine
// formats BENCH_*.json and cmd/benchgate consume.
type BenchMineResult struct {
	// Workers is the pinned worker budget of the measured run.
	Workers int `json:"workers"`
	// NsPerOp is the wall time of one extraction pass.
	NsPerOp int64 `json:"ns_per_op"`
	// AllocsPerOp is the heap allocation count of one extraction pass;
	// the gate holds it to the same relative tolerance as the timing.
	// Zero in a baseline written before the field existed disables that
	// comparison.
	AllocsPerOp int64 `json:"allocs_per_op"`
	// Patterns is the mined pattern count — deterministic for a given
	// workload, so the gate compares it exactly.
	Patterns int `json:"patterns"`
	// ParallelEfficiency is the speedup over the workers-1 line of the
	// same report: ns(workers-1) / ns(workers-k). 1.0 by definition on
	// the workers-1 line; zero when the report has no workers-1 line to
	// normalize against. On machines with fewer cores than workers the
	// honest value saturates near 1.0 — cmd/benchgate reads num_cpu and
	// only enforces its efficiency floor when the cores were there.
	ParallelEfficiency float64 `json:"parallel_efficiency,omitempty"`
}

// BenchMineReport is the top-level JSON document.
type BenchMineReport struct {
	Benchmark  string `json:"benchmark"`
	GoMaxProcs int    `json:"go_max_procs"`
	// NumCPU records the machine's core count at measurement time —
	// unlike GOMAXPROCS it cannot be inflated by environment, so the
	// gate uses it to decide whether a parallel-efficiency floor is
	// physically meaningful on this machine.
	NumCPU  int               `json:"num_cpu"`
	Results []BenchMineResult `json:"results"`
}

// benchMineWorkerCounts resolves the worker curve to measure: the
// $BENCH_MINE_WORKERS comma list when set (so CI pins an exact curve
// regardless of runner core count), otherwise {1, 4, NumCPU}
// deduplicated — the scaling curve the gate's efficiency floor reads.
func benchMineWorkerCounts(t *testing.T) []int {
	if env := os.Getenv("BENCH_MINE_WORKERS"); env != "" {
		var counts []int
		for _, part := range strings.Split(env, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n < 1 {
				t.Fatalf("BENCH_MINE_WORKERS: bad worker count %q", part)
			}
			counts = append(counts, n)
		}
		return counts
	}
	set := map[int]bool{1: true, 4: true, runtime.NumCPU(): true}
	counts := make([]int, 0, len(set))
	for n := range set {
		counts = append(counts, n)
	}
	sort.Ints(counts)
	return counts
}

// TestEmitBenchMineJSON re-runs BenchmarkMine's workload through
// testing.Benchmark and writes the measurements as JSON to the path in
// $BENCH_MINE_JSON, for the CI regression gate (cmd/benchgate) and for
// refreshing the committed BENCH_*.json baselines. Unset, the test
// skips, so normal `go test` runs pay nothing.
func TestEmitBenchMineJSON(t *testing.T) {
	path := os.Getenv("BENCH_MINE_JSON")
	if path == "" {
		t.Skip("BENCH_MINE_JSON not set")
	}
	report := BenchMineReport{
		Benchmark:  "BenchmarkMine",
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
	params := benchParams()
	for _, workers := range benchMineWorkerCounts(t) {
		cfg := core.DefaultConfig()
		cfg.Workers = workers
		env := experiments.SetupConfig(benchScale(), cfg)
		env.Pipeline.Database(core.RecCSD) // prebuild: measure extraction alone
		patterns := 0
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs() // populate MemAllocs so AllocsPerOp is real
			for i := 0; i < b.N; i++ {
				patterns = len(env.Pipeline.Mine(core.CSDPM, params))
			}
		})
		report.Results = append(report.Results, BenchMineResult{
			Workers:     workers,
			NsPerOp:     r.NsPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			Patterns:    patterns,
		})
	}
	// Normalize the scaling curve against this report's own workers-1
	// line (cross-machine ns/op is meaningless; same-report ratios are
	// the portable signal).
	var baseNs int64
	for _, r := range report.Results {
		if r.Workers == 1 {
			baseNs = r.NsPerOp
			break
		}
	}
	if baseNs > 0 {
		for i := range report.Results {
			report.Results[i].ParallelEfficiency = float64(baseNs) / float64(report.Results[i].NsPerOp)
		}
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: %+v", path, report.Results)
}
