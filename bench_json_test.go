package csdm

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"

	"csdm/internal/core"
	"csdm/internal/experiments"
)

// BenchMineResult is one BenchmarkMine measurement in the machine
// formats BENCH_*.json and cmd/benchgate consume.
type BenchMineResult struct {
	// Workers is the pinned worker budget of the measured run.
	Workers int `json:"workers"`
	// NsPerOp is the wall time of one extraction pass.
	NsPerOp int64 `json:"ns_per_op"`
	// AllocsPerOp is the heap allocation count of one extraction pass;
	// the gate holds it to the same relative tolerance as the timing.
	// Zero in a baseline written before the field existed disables that
	// comparison.
	AllocsPerOp int64 `json:"allocs_per_op"`
	// Patterns is the mined pattern count — deterministic for a given
	// workload, so the gate compares it exactly.
	Patterns int `json:"patterns"`
}

// BenchMineReport is the top-level JSON document.
type BenchMineReport struct {
	Benchmark  string            `json:"benchmark"`
	GoMaxProcs int               `json:"go_max_procs"`
	Results    []BenchMineResult `json:"results"`
}

// TestEmitBenchMineJSON re-runs BenchmarkMine's workload through
// testing.Benchmark and writes the measurements as JSON to the path in
// $BENCH_MINE_JSON, for the CI regression gate (cmd/benchgate) and for
// refreshing the committed BENCH_*.json baselines. Unset, the test
// skips, so normal `go test` runs pay nothing.
func TestEmitBenchMineJSON(t *testing.T) {
	path := os.Getenv("BENCH_MINE_JSON")
	if path == "" {
		t.Skip("BENCH_MINE_JSON not set")
	}
	report := BenchMineReport{Benchmark: "BenchmarkMine", GoMaxProcs: runtime.GOMAXPROCS(0)}
	params := benchParams()
	counts := []int{1}
	if n := runtime.NumCPU(); n > 1 {
		counts = append(counts, n)
	}
	for _, workers := range counts {
		cfg := core.DefaultConfig()
		cfg.Workers = workers
		env := experiments.SetupConfig(benchScale(), cfg)
		env.Pipeline.Database(core.RecCSD) // prebuild: measure extraction alone
		patterns := 0
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs() // populate MemAllocs so AllocsPerOp is real
			for i := 0; i < b.N; i++ {
				patterns = len(env.Pipeline.Mine(core.CSDPM, params))
			}
		})
		report.Results = append(report.Results, BenchMineResult{
			Workers:     workers,
			NsPerOp:     r.NsPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			Patterns:    patterns,
		})
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: %+v", path, report.Results)
}
